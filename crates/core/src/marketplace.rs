//! The `Marketplace` service facade: a long-lived auction *system* rather
//! than a per-keyword engine.
//!
//! The paper describes a database of expressive bids that serves a stream
//! of keyword queries and absorbs incremental bid-program updates between
//! auctions. [`Marketplace`] is that surface: it owns registered
//! advertisers ([`AdvertiserHandle`]), per-keyword campaigns (each a
//! [`BidsTable`] bidding program — or an arbitrary [`Bidder`] — plus
//! click/purchase models), and one persistent [`AuctionEngine`]+solver per
//! keyword. Queries are served through a typed API
//! ([`Marketplace::serve`] / [`Marketplace::serve_batch`], built on
//! [`AuctionEngine::run_batch`]) and bids are changed through an
//! incremental update API ([`Marketplace::update_bid`],
//! [`Marketplace::pause_campaign`], [`Marketplace::set_roi_target`]) that
//! routes through the Section IV-B logical-update machinery
//! ([`crate::logical::AdjustmentList`]) instead of rebuilding bidder
//! vectors.
//!
//! [`AuctionEngine`] remains the documented low-level escape hatch for
//! callers that want to assemble a single-keyword auction by hand.
//!
//! # Quickstart
//!
//! ```
//! use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
//! use ssa_bidlang::Money;
//!
//! let mut market = Marketplace::builder()
//!     .slots(2)
//!     .keywords(1)
//!     .seed(7)
//!     .default_click_probs(vec![0.6, 0.3])
//!     .build()
//!     .expect("valid configuration");
//! let shoes = market.register_advertiser("shoes.example");
//! let books = market.register_advertiser("books.example");
//! let c1 = market
//!     .add_campaign(shoes, 0, CampaignSpec::per_click(Money::from_cents(20)))
//!     .expect("campaign accepted");
//! market
//!     .add_campaign(books, 0, CampaignSpec::per_click(Money::from_cents(10)))
//!     .expect("campaign accepted");
//!
//! let response = market.serve(QueryRequest::new(0)).expect("keyword 0 exists");
//! assert_eq!(response.placements.len(), 2);
//!
//! // Incremental update: O(log n) on the keyword's logical bid index, no
//! // engine rebuild.
//! market.update_bid(c1, Money::from_cents(5)).expect("per-click campaign");
//! assert_eq!(market.current_bid(c1).unwrap(), Money::from_cents(5));
//! ```

use crate::bidder::{Bidder, BidderOutcome, QueryContext};
use crate::engine::{AuctionEngine, AuctionReport, BatchReport, EngineConfig, WdMethod};
use crate::logical::AdjustmentList;
use crate::pricing::PricingScheme;
use crate::prob::{ClickModel, PurchaseModel};
use crate::sqlprog::{SqlProgramBidder, SqlProgramError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssa_bidlang::targeting::{CompiledTargeting, TargetParseError, UserAttrs};
use ssa_bidlang::{BidsTable, Money, SlotId};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Handles and identifiers.
// ---------------------------------------------------------------------------

/// Opaque handle to a registered advertiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AdvertiserHandle(usize);

impl AdvertiserHandle {
    /// Registration index of the advertiser (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reassembles a handle from a registration index.
    ///
    /// Intended for external routing layers (e.g. a wire protocol carrying
    /// advertiser references between processes); a handle naming no
    /// registered advertiser is rejected with
    /// [`MarketError::UnknownAdvertiser`] by every API taking one.
    pub fn from_index(index: usize) -> Self {
        AdvertiserHandle(index)
    }
}

/// Opaque identifier of a campaign: one bidding program on one keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CampaignId {
    keyword: usize,
    index: usize,
}

impl CampaignId {
    /// Reassembles a campaign id from its `(keyword, index)` coordinates.
    ///
    /// Intended for external routing layers (e.g. a wire protocol carrying
    /// campaign references between processes): a fabricated id that names
    /// no registered campaign is rejected with
    /// [`MarketError::UnknownCampaign`] by every API taking one, so
    /// round-tripping ids through this constructor is safe.
    pub fn from_parts(keyword: usize, index: usize) -> Self {
        CampaignId { keyword, index }
    }

    #[cfg(test)]
    pub(crate) fn new(keyword: usize, index: usize) -> Self {
        CampaignId { keyword, index }
    }

    /// The keyword the campaign bids on.
    pub fn keyword(self) -> usize {
        self.keyword
    }

    /// Registration index of the campaign within its keyword (dense,
    /// starting at 0).
    pub fn index(self) -> usize {
        self.index
    }
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Typed error surface of the [`Marketplace`] API.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketError {
    /// The handle does not name a registered advertiser.
    UnknownAdvertiser(AdvertiserHandle),
    /// The keyword index is outside the configured keyword universe.
    UnknownKeyword {
        /// Requested keyword index.
        keyword: usize,
        /// Size of the configured keyword universe.
        num_keywords: usize,
    },
    /// The id does not name a registered campaign.
    UnknownCampaign(CampaignId),
    /// A per-slot model vector does not match the slot count.
    ModelDimension {
        /// Slots the marketplace was built with.
        expected: usize,
        /// Length of the supplied vector.
        got: usize,
    },
    /// A probability fell outside `[0, 1]`.
    InvalidProbability(f64),
    /// The campaign supplied no click model and the marketplace was built
    /// without [`MarketplaceBuilder::default_click_probs`].
    MissingClickModel,
    /// The campaign runs a custom bidding program, so the per-click
    /// incremental update API does not apply; pause it or re-register it
    /// instead.
    NotIncremental(CampaignId),
    /// Bids must be non-negative.
    NegativeBid(Money),
    /// ROI targets must be finite and strictly positive.
    InvalidRoiTarget(f64),
    /// The campaign's targeting expression does not parse (syntax error or
    /// hostile nesting past the depth limit). Registration is rejected as a
    /// whole; nothing about the market changes.
    InvalidTargeting(TargetParseError),
    /// The campaign runs a custom bidding program or fixed table, which
    /// cannot be serialized by the durability layer; the operation was
    /// rejected because a mutation journal is attached (or a state capture
    /// was requested). Only per-click campaigns are durable.
    NotDurable(CampaignId),
    /// A marketplace needs at least one slot.
    NoSlots,
    /// A marketplace needs at least one keyword.
    NoKeywords,
    /// A sharded marketplace needs at least one shard.
    NoShards,
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::UnknownAdvertiser(h) => {
                write!(f, "unknown advertiser handle {:?}", h.index())
            }
            MarketError::UnknownKeyword {
                keyword,
                num_keywords,
            } => write!(
                f,
                "keyword {keyword} outside the configured universe of {num_keywords}"
            ),
            MarketError::UnknownCampaign(id) => write!(
                f,
                "unknown campaign {}/{} (keyword/index)",
                id.keyword, id.index
            ),
            MarketError::ModelDimension { expected, got } => write!(
                f,
                "per-slot model has {got} entries but the marketplace has {expected} slots"
            ),
            MarketError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0, 1]")
            }
            MarketError::MissingClickModel => f.write_str(
                "campaign supplied no click probabilities and no default click model is configured",
            ),
            MarketError::NotIncremental(id) => write!(
                f,
                "campaign {}/{} runs a custom bidding program; \
                 the per-click incremental update API does not apply",
                id.keyword, id.index
            ),
            MarketError::NotDurable(id) => write!(
                f,
                "campaign {}/{} runs a non-per-click program, which cannot \
                 be journalled for durability",
                id.keyword, id.index
            ),
            MarketError::NegativeBid(m) => write!(f, "bid {m} is negative"),
            MarketError::InvalidRoiTarget(t) => {
                write!(f, "ROI target {t} must be finite and positive")
            }
            MarketError::InvalidTargeting(err) => {
                write!(f, "invalid targeting expression: {err}")
            }
            MarketError::NoSlots => f.write_str("a marketplace needs at least one slot"),
            MarketError::NoKeywords => f.write_str("a marketplace needs at least one keyword"),
            MarketError::NoShards => f.write_str("a sharded marketplace needs at least one shard"),
        }
    }
}

impl std::error::Error for MarketError {}

// ---------------------------------------------------------------------------
// Campaign specification.
// ---------------------------------------------------------------------------

/// What a campaign bids. Built with [`CampaignSpec::per_click`],
/// [`CampaignSpec::table`], or [`CampaignSpec::program`].
enum ProgramSpec {
    /// Classical single-feature campaign: a per-click bid. Supports the
    /// whole incremental update API.
    PerClick(Money),
    /// A fixed multi-feature [`BidsTable`] submitted verbatim each auction.
    Table(BidsTable),
    /// An arbitrary bidding program (anything implementing [`Bidder`]),
    /// e.g. a shared-state ROI strategy. `Send` so the marketplace — and
    /// with it every campaign — can move across threads in a sharded
    /// serving layer (see [`crate::sharded`]).
    Program(Box<dyn Bidder + Send>),
}

/// Declarative description of a campaign handed to
/// [`Marketplace::add_campaign`].
///
/// Per-slot click probabilities default to the builder-level
/// [`MarketplaceBuilder::default_click_probs`]; purchase probabilities
/// default to "never" (the pure click-auction setting).
pub struct CampaignSpec {
    program: ProgramSpec,
    click_probs: Option<Vec<f64>>,
    purchase_probs: Option<Vec<(f64, f64)>>,
    click_value: Money,
    roi_target: Option<f64>,
    targeting: Option<String>,
}

impl CampaignSpec {
    fn new(program: ProgramSpec) -> Self {
        CampaignSpec {
            program,
            click_probs: None,
            purchase_probs: None,
            click_value: Money::ZERO,
            roi_target: None,
            targeting: None,
        }
    }

    /// A classical single-feature campaign bidding `bid` per click. Only
    /// this kind supports [`Marketplace::update_bid`] and
    /// [`Marketplace::set_roi_target`].
    pub fn per_click(bid: Money) -> Self {
        CampaignSpec::new(ProgramSpec::PerClick(bid))
    }

    /// A fixed multi-feature bidding program: the table is submitted
    /// verbatim at every auction on the campaign's keyword.
    pub fn table(bids: BidsTable) -> Self {
        CampaignSpec::new(ProgramSpec::Table(bids))
    }

    /// An arbitrary bidding program. The program sees the global market
    /// clock and the queried keyword in its [`QueryContext`] and receives
    /// outcome notifications; this is how stateful strategies (e.g. the
    /// Section II-C ROI heuristic) run on the facade. Programs must be
    /// `Send` so campaigns can migrate to shard worker threads.
    pub fn program(bidder: Box<dyn Bidder + Send>) -> Self {
        CampaignSpec::new(ProgramSpec::Program(bidder))
    }

    /// A Section II-B **SQL bidding program**: `tables` sets up the
    /// program's private schema/state and `program` installs its triggers,
    /// both executed by the embedded [`ssa_minidb`] engine under the host
    /// protocol documented at [`crate::sqlprog`]. The scripts are parsed
    /// once at registration (prepared statements thereafter); a program
    /// that errors at auction time is excluded from the matching rather
    /// than taking serving down.
    ///
    /// ```
    /// use ssa_core::marketplace::CampaignSpec;
    /// use ssa_minidb::Params;
    ///
    /// let spec = CampaignSpec::sql_program(
    ///     "CREATE TRIGGER bid AFTER INSERT ON Query
    ///      { UPDATE Bids SET value = value + 1; }",
    ///     "CREATE TABLE Query (kw INT);
    ///      CREATE TABLE Bids (formula TEXT, value INT);
    ///      INSERT INTO Bids VALUES ('Click', :start);",
    ///     &Params::new().bind("start", 10),
    /// )
    /// .expect("well-formed program");
    /// ```
    pub fn sql_program(
        program: &str,
        tables: &str,
        params: &ssa_minidb::Params,
    ) -> Result<Self, SqlProgramError> {
        let bidder = SqlProgramBidder::new(tables, program, params)?;
        Ok(CampaignSpec::new(ProgramSpec::Program(Box::new(bidder))))
    }

    /// Per-slot click probabilities for this campaign's ad.
    pub fn click_probs(mut self, probs: Vec<f64>) -> Self {
        self.click_probs = Some(probs);
        self
    }

    /// Per-slot purchase probabilities `(p | click, p | no click)`.
    pub fn purchase_probs(mut self, probs: Vec<(f64, f64)>) -> Self {
        self.purchase_probs = Some(probs);
        self
    }

    /// The advertiser's value of a click, used by
    /// [`Marketplace::set_roi_target`] to derive the bid ceiling
    /// `value / target`.
    pub fn click_value(mut self, value: Money) -> Self {
        self.click_value = value;
        self
    }

    /// Initial ROI target (see [`Marketplace::set_roi_target`]).
    pub fn roi_target(mut self, target: f64) -> Self {
        self.roi_target = Some(target);
        self
    }

    /// Restricts the campaign to queries whose [`UserAttrs`] satisfy the
    /// given targeting expression (see [`ssa_bidlang::targeting`]), e.g.
    /// `"geo = 'us' and device in ('mobile', 'tablet')"`.
    ///
    /// The source is parsed and compiled once, inside
    /// [`Marketplace::add_campaign`]; a malformed or hostile (too deeply
    /// nested) expression rejects the registration with
    /// [`MarketError::InvalidTargeting`] and changes nothing. On queries
    /// the compiled matcher rejects, the campaign is excluded from winner
    /// determination before the matrix fill — its program does not run and
    /// it can never be displayed, exactly like a paused campaign.
    pub fn targeting(mut self, source: impl Into<String>) -> Self {
        self.targeting = Some(source.into());
        self
    }

    /// The journalable pieces of a per-click spec, exactly as supplied
    /// (`None` for table/program specs, which cannot be serialized). Used
    /// by the sharded facade to journal `add_campaign` for durability.
    pub(crate) fn per_click_parts(&self) -> Option<PerClickParts> {
        match &self.program {
            ProgramSpec::PerClick(bid) => Some(PerClickParts {
                bid: *bid,
                click_value: self.click_value,
                roi_target: self.roi_target,
                click_probs: self.click_probs.clone(),
                purchase_probs: self.purchase_probs.clone(),
                targeting: self.targeting.clone(),
            }),
            _ => None,
        }
    }
}

/// The serializable content of a per-click [`CampaignSpec`]; see
/// [`CampaignSpec::per_click_parts`].
pub(crate) struct PerClickParts {
    pub(crate) bid: Money,
    pub(crate) click_value: Money,
    pub(crate) roi_target: Option<f64>,
    pub(crate) click_probs: Option<Vec<f64>>,
    pub(crate) purchase_probs: Option<Vec<(f64, f64)>>,
    pub(crate) targeting: Option<String>,
}

impl std::fmt::Debug for CampaignSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.program {
            ProgramSpec::PerClick(bid) => format!("per-click {bid}"),
            ProgramSpec::Table(t) => format!("table[{} rows]", t.len()),
            ProgramSpec::Program(_) => "custom program".to_string(),
        };
        f.debug_struct("CampaignSpec")
            .field("program", &kind)
            .field("click_value", &self.click_value)
            .field("roi_target", &self.roi_target)
            .field("targeting", &self.targeting)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Internal campaign state.
// ---------------------------------------------------------------------------

/// Mutable per-campaign bid state (the part the incremental API touches).
#[derive(Debug, Clone, Copy)]
enum CampaignKind {
    PerClick {
        nominal: Money,
        click_value: Money,
        roi_target: Option<f64>,
    },
    Table,
    Program,
}

#[derive(Debug)]
struct Campaign {
    id: CampaignId,
    advertiser: AdvertiserHandle,
    kind: CampaignKind,
    paused: bool,
    click_probs: Vec<f64>,
    purchase_probs: Vec<(f64, f64)>,
    /// Compiled targeting matcher (`None` = the campaign bids on every
    /// query). Shared with the keyword's engine via `Arc`: engine rebuilds
    /// never re-parse, and the retained [`CompiledTargeting::source`] is
    /// what state capture and the mutation journal serialize.
    targeting: Option<Arc<CompiledTargeting>>,
}

/// The engine-side representation of a campaign: a [`Bidder`] whose table
/// is rewritten in place by the incremental update API. A paused campaign
/// submits an empty table, which winner determination treats as
/// [`ssa_matching::EXCLUDED`] — it can never be displayed.
struct CampaignBidder {
    table: BidsTable,
    program: Option<Box<dyn Bidder + Send>>,
    paused: bool,
}

impl Bidder for CampaignBidder {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        if self.paused {
            return BidsTable::empty();
        }
        match &mut self.program {
            Some(p) => p.on_query(ctx),
            None => self.table.clone(),
        }
    }

    fn on_outcome(&mut self, ctx: &QueryContext, outcome: &BidderOutcome) {
        if let Some(p) = &mut self.program {
            if !self.paused {
                p.on_outcome(ctx, outcome);
            }
        }
    }
}

impl std::fmt::Debug for CampaignBidder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignBidder")
            .field("paused", &self.paused)
            .field(
                "program",
                &if self.program.is_some() {
                    "custom"
                } else {
                    "table"
                },
            )
            .finish_non_exhaustive()
    }
}

/// Everything the marketplace holds for one keyword: campaign metadata, the
/// persistent engine (solver + matrix buffers), and the logical bid index.
///
/// The campaign bidders live in exactly one of two places: inside the
/// engine while it exists, or in `pending` between a structural change
/// (campaign added) and the next serve. Incremental updates mutate them in
/// place wherever they are.
#[derive(Debug)]
struct KeywordBook {
    campaigns: Vec<Campaign>,
    pending: Vec<CampaignBidder>,
    engine: Option<AuctionEngine<CampaignBidder>>,
    /// Sorted per-click bids (cents) of unpaused per-click campaigns — the
    /// Section IV-B adjustment list backing `update_bid` / `top_bids`.
    index: AdjustmentList,
    /// The keyword's own user-action RNG stream, drawn from instead of the
    /// market-global stream when the marketplace runs in
    /// [`MarketplaceBuilder::keyword_local_rng`] mode. Seeded purely from
    /// `(market seed, keyword)`, so a keyword's outcome stream does not
    /// depend on which other keywords were queried in between — the
    /// property sharded serving relies on.
    rng: StdRng,
}

impl KeywordBook {
    fn new(rng: StdRng) -> Self {
        KeywordBook {
            campaigns: Vec::new(),
            pending: Vec::new(),
            engine: None,
            index: AdjustmentList::default(),
            rng,
        }
    }

    fn bidder_mut(&mut self, index: usize) -> &mut CampaignBidder {
        match self.engine.as_mut() {
            Some(engine) => &mut engine.bidders[index],
            None => &mut self.pending[index],
        }
    }
}

/// The 64-bit SplitMix finaliser: a cheap, stable bijective mixer used for
/// per-keyword RNG-seed derivation and shard routing.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of keyword `keyword`'s local RNG stream under market seed `seed`.
pub(crate) fn keyword_stream_seed(seed: u64, keyword: usize) -> u64 {
    splitmix64(seed ^ splitmix64(keyword as u64 ^ 0x5EED_4B1D_0EC0_FFEE))
}

// ---------------------------------------------------------------------------
// Query-serving API types.
// ---------------------------------------------------------------------------

/// One keyword query to serve: the keyword plus the typed user attributes
/// campaign targeting expressions evaluate against.
///
/// Deliberately **not** `Copy`: the attribute bag is heap-backed, and the
/// serve paths are written to move or borrow requests rather than clone
/// them, so growing the type never introduces silent per-query clones on
/// the hot loop. `QueryRequest::new(kw)` / `kw.into()` build the legacy
/// attribute-less query bit-compatibly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryRequest {
    /// Index of the queried keyword.
    pub keyword: usize,
    /// Typed user attributes (empty for legacy keyword-only queries).
    pub attrs: UserAttrs,
}

impl QueryRequest {
    /// A query on `keyword` with no user attributes.
    pub fn new(keyword: usize) -> Self {
        QueryRequest {
            keyword,
            attrs: UserAttrs::new(),
        }
    }

    /// A query on `keyword` carrying user attributes.
    pub fn with_attrs(keyword: usize, attrs: UserAttrs) -> Self {
        QueryRequest { keyword, attrs }
    }
}

impl From<usize> for QueryRequest {
    fn from(keyword: usize) -> Self {
        QueryRequest::new(keyword)
    }
}

impl crate::engine::EngineQuery for QueryRequest {
    fn keyword(&self) -> usize {
        self.keyword
    }

    fn attrs(&self) -> &UserAttrs {
        &self.attrs
    }
}

// Compile-time audit: the attribute bag (and with it `QueryRequest`) must
// stay shareable across shard worker threads and cheaply duplicable —
// `Send + Sync + Clone` — or the sharded fan-out and the wire front-end
// stop building.
const _: () = {
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<UserAttrs>();
    assert_send_sync_clone::<QueryRequest>();
};

/// One ad shown in response to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The slot the ad occupied.
    pub slot: SlotId,
    /// The campaign whose program won the slot.
    pub campaign: CampaignId,
    /// The advertiser owning the campaign.
    pub advertiser: AdvertiserHandle,
    /// Whether the user clicked the ad.
    pub clicked: bool,
    /// Whether the user purchased via the ad.
    pub purchased: bool,
    /// Amount the campaign was charged this auction.
    pub charge: Money,
}

/// Everything that happened serving one query.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionResponse {
    /// The queried keyword.
    pub keyword: usize,
    /// Global market clock value of this auction (1-based).
    pub time: u64,
    /// Expected revenue of the winning allocation.
    pub expected_revenue: f64,
    /// Total realised revenue.
    pub realized_revenue: Money,
    /// The ads shown, in slot order.
    pub placements: Vec<Placement>,
    /// Every charge of the auction. Under GSP/VCG these cover winners only;
    /// under pay-your-bid, unplaced campaigns with negated-slot formulas can
    /// owe money too.
    pub charges: Vec<(CampaignId, Money)>,
}

/// Aggregate outcome of [`Marketplace::serve_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct MarketBatchReport {
    /// Market-wide totals.
    pub total: BatchReport,
    /// Per-keyword totals (indexed by keyword).
    pub per_keyword: Vec<BatchReport>,
    /// Number of maximal same-keyword chunks the stream was split into.
    /// A chunk on a keyword with campaigns is one
    /// [`AuctionEngine::run_batch`] call on that keyword's persistent
    /// engine; a chunk on a campaign-less keyword serves empty pages
    /// without touching any engine.
    pub chunks: u64,
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

/// Configures and constructs a [`Marketplace`]; obtained from
/// [`Marketplace::builder`].
#[derive(Debug, Clone)]
pub struct MarketplaceBuilder {
    method: WdMethod,
    pricing: PricingScheme,
    num_slots: usize,
    num_keywords: usize,
    seed: u64,
    keyword_local_rng: bool,
    pruned: bool,
    warm_start: bool,
    default_click_probs: Option<Vec<f64>>,
    default_purchase_probs: Option<Vec<(f64, f64)>>,
}

impl Default for MarketplaceBuilder {
    fn default() -> Self {
        let engine_defaults = EngineConfig::default();
        MarketplaceBuilder {
            method: WdMethod::Reduced,
            pricing: PricingScheme::Gsp,
            num_slots: 1,
            num_keywords: 1,
            seed: 0,
            keyword_local_rng: false,
            pruned: engine_defaults.pruned,
            warm_start: engine_defaults.warm_start,
            default_click_probs: None,
            default_purchase_probs: None,
        }
    }
}

impl MarketplaceBuilder {
    /// Winner-determination method (default: [`WdMethod::Reduced`]).
    pub fn method(mut self, method: WdMethod) -> Self {
        self.method = method;
        self
    }

    /// Pricing rule (default: [`PricingScheme::Gsp`]).
    pub fn pricing(mut self, pricing: PricingScheme) -> Self {
        self.pricing = pricing;
        self
    }

    /// Number of ad slots per results page (default: 1).
    pub fn slots(mut self, num_slots: usize) -> Self {
        self.num_slots = num_slots;
        self
    }

    /// Size of the keyword universe (default: 1).
    pub fn keywords(mut self, num_keywords: usize) -> Self {
        self.num_keywords = num_keywords;
        self
    }

    /// Seed of the marketplace's own RNG (user clicks and purchases).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draw user actions from one deterministic RNG stream *per keyword*
    /// (each seeded from `(seed, keyword)`) instead of a single
    /// market-global stream (the default).
    ///
    /// With keyword-local streams, a keyword's auction outcomes depend only
    /// on the sub-sequence of queries on that keyword — not on how queries
    /// to other keywords interleave with them. That independence is what
    /// makes serving bit-identical no matter how keywords are partitioned
    /// across shards; [`crate::sharded::ShardedMarketplace`] always runs
    /// its shards in this mode, and an unsharded marketplace built with
    /// this flag reproduces a sharded one exactly.
    pub fn keyword_local_rng(mut self, enabled: bool) -> Self {
        self.keyword_local_rng = enabled;
        self
    }

    /// Run winner determination through the Section III-E top-k
    /// [`ssa_matching::PrunedSolver`] (default: off). Bit-identical
    /// outcomes; see [`EngineConfig::pruned`].
    pub fn pruned(mut self, enabled: bool) -> Self {
        self.pruned = enabled;
        self
    }

    /// Skip the matrix refill and solve when no bid changed since a
    /// keyword's previous auction (default: on). Bit-identical outcomes;
    /// see [`EngineConfig::warm_start`].
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Click model applied to campaigns that do not supply their own
    /// [`CampaignSpec::click_probs`].
    pub fn default_click_probs(mut self, probs: Vec<f64>) -> Self {
        self.default_click_probs = Some(probs);
        self
    }

    /// Purchase model applied to campaigns that do not supply their own
    /// [`CampaignSpec::purchase_probs`] (default: purchases never happen).
    pub fn default_purchase_probs(mut self, probs: Vec<(f64, f64)>) -> Self {
        self.default_purchase_probs = Some(probs);
        self
    }

    /// Validates the configuration and constructs a
    /// [`crate::sharded::ShardedMarketplace`] with `num_shards` shards
    /// (each running in [`MarketplaceBuilder::keyword_local_rng`] mode).
    pub fn build_sharded(
        self,
        num_shards: usize,
    ) -> Result<crate::sharded::ShardedMarketplace, MarketError> {
        crate::sharded::ShardedMarketplace::new(self, num_shards)
    }

    /// Validates the configuration and constructs the marketplace.
    pub fn build(self) -> Result<Marketplace, MarketError> {
        if self.num_slots == 0 {
            return Err(MarketError::NoSlots);
        }
        if self.num_keywords == 0 {
            return Err(MarketError::NoKeywords);
        }
        if let Some(probs) = &self.default_click_probs {
            validate_click_probs(probs, self.num_slots)?;
        }
        if let Some(probs) = &self.default_purchase_probs {
            validate_purchase_probs(probs, self.num_slots)?;
        }
        Ok(Marketplace {
            config: EngineConfig {
                method: self.method,
                pricing: self.pricing,
                pruned: self.pruned,
                warm_start: self.warm_start,
            },
            num_slots: self.num_slots,
            num_keywords: self.num_keywords,
            advertisers: Vec::new(),
            books: (0..self.num_keywords)
                .map(|kw| {
                    KeywordBook::new(StdRng::seed_from_u64(keyword_stream_seed(self.seed, kw)))
                })
                .collect(),
            default_click_probs: self.default_click_probs,
            default_purchase_probs: self.default_purchase_probs,
            rng: StdRng::seed_from_u64(self.seed),
            seed: self.seed,
            keyword_local_rng: self.keyword_local_rng,
            clock: 0,
        })
    }
}

fn validate_click_probs(probs: &[f64], num_slots: usize) -> Result<(), MarketError> {
    if probs.len() != num_slots {
        return Err(MarketError::ModelDimension {
            expected: num_slots,
            got: probs.len(),
        });
    }
    for &p in probs {
        if !(0.0..=1.0).contains(&p) {
            return Err(MarketError::InvalidProbability(p));
        }
    }
    Ok(())
}

fn validate_purchase_probs(probs: &[(f64, f64)], num_slots: usize) -> Result<(), MarketError> {
    if probs.len() != num_slots {
        return Err(MarketError::ModelDimension {
            expected: num_slots,
            got: probs.len(),
        });
    }
    for &(pc, pn) in probs {
        if !(0.0..=1.0).contains(&pc) {
            return Err(MarketError::InvalidProbability(pc));
        }
        if !(0.0..=1.0).contains(&pn) {
            return Err(MarketError::InvalidProbability(pn));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The marketplace itself.
// ---------------------------------------------------------------------------

/// A point-in-time summary of a marketplace's shape and serving progress:
/// the payload behind an operational `Stats` call (e.g. the network
/// front-end's stats response). Cheap to produce — counts only, no
/// per-campaign detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarketSnapshot {
    /// Registered advertisers.
    pub advertisers: usize,
    /// Campaigns registered across all keywords.
    pub campaigns: usize,
    /// Size of the keyword universe.
    pub keywords: usize,
    /// Ad slots per results page.
    pub slots: usize,
    /// Shards the keyword universe is partitioned across (1 for the
    /// single-threaded facade).
    pub shards: usize,
    /// Total auctions served so far (the global market clock).
    pub auctions: u64,
}

/// A long-lived sponsored-search marketplace: registered advertisers,
/// per-keyword campaigns, one persistent engine+solver per keyword, a typed
/// query-serving API, and an incremental update API. See the
/// [module docs](crate::marketplace) for the full picture.
#[derive(Debug)]
pub struct Marketplace {
    config: EngineConfig,
    num_slots: usize,
    num_keywords: usize,
    advertisers: Vec<String>,
    books: Vec<KeywordBook>,
    default_click_probs: Option<Vec<f64>>,
    default_purchase_probs: Option<Vec<(f64, f64)>>,
    rng: StdRng,
    /// The builder seed, retained so a state capture can reproduce the
    /// build (per-keyword RNG streams are seeded from it).
    seed: u64,
    /// See [`MarketplaceBuilder::keyword_local_rng`].
    keyword_local_rng: bool,
    clock: u64,
}

impl Marketplace {
    /// Starts configuring a marketplace.
    pub fn builder() -> MarketplaceBuilder {
        MarketplaceBuilder::default()
    }

    /// Registers an advertiser, returning its handle.
    pub fn register_advertiser(&mut self, name: impl Into<String>) -> AdvertiserHandle {
        self.advertisers.push(name.into());
        AdvertiserHandle(self.advertisers.len() - 1)
    }

    /// The display name an advertiser registered under.
    pub fn advertiser_name(&self, advertiser: AdvertiserHandle) -> Result<&str, MarketError> {
        self.advertisers
            .get(advertiser.0)
            .map(String::as_str)
            .ok_or(MarketError::UnknownAdvertiser(advertiser))
    }

    /// Number of registered advertisers.
    pub fn num_advertisers(&self) -> usize {
        self.advertisers.len()
    }

    /// Number of ad slots per results page.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Size of the keyword universe.
    pub fn num_keywords(&self) -> usize {
        self.num_keywords
    }

    /// Number of campaigns registered on a keyword.
    pub fn num_campaigns(&self, keyword: usize) -> Result<usize, MarketError> {
        self.check_keyword(keyword)?;
        Ok(self.books[keyword].campaigns.len())
    }

    /// The winner-determination method every keyword engine runs.
    pub fn method(&self) -> WdMethod {
        self.config.method
    }

    /// The pricing rule in force.
    pub fn pricing(&self) -> PricingScheme {
        self.config.pricing
    }

    /// Whether winner determination runs through the top-k
    /// [`ssa_matching::PrunedSolver`].
    pub fn pruned(&self) -> bool {
        self.config.pruned
    }

    /// Whether unchanged auctions skip the matrix refill and solve.
    pub fn warm_start(&self) -> bool {
        self.config.warm_start
    }

    /// Enables or disables top-k pruned winner determination on every
    /// keyword engine (built and future). Outcomes are bit-identical either
    /// way; only the solve cost changes.
    pub fn set_pruned(&mut self, enabled: bool) {
        self.config.pruned = enabled;
        for book in &mut self.books {
            if let Some(engine) = &mut book.engine {
                engine.config.pruned = enabled;
            }
        }
    }

    /// Enables or disables warm-started assignments on every keyword engine
    /// (built and future). Outcomes are bit-identical either way.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.config.warm_start = enabled;
        for book in &mut self.books {
            if let Some(engine) = &mut book.engine {
                engine.config.warm_start = enabled;
            }
        }
    }

    /// The global market clock: total auctions served.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// The seed the marketplace was built with (user-action randomness).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    // -- durable state capture (crate-internal; the public surface is
    // `ShardedMarketplace::capture_state` / `from_state`) ------------------

    /// Builder-level default click model, if one was configured.
    pub(crate) fn default_click_probs(&self) -> Option<&Vec<f64>> {
        self.default_click_probs.as_ref()
    }

    /// Builder-level default purchase model, if one was configured.
    pub(crate) fn default_purchase_probs(&self) -> Option<&Vec<(f64, f64)>> {
        self.default_purchase_probs.as_ref()
    }

    /// Appends the durable state of every campaign on `keyword` to `out`
    /// in registration order; [`MarketError::NotDurable`] if any campaign
    /// is not per-click.
    pub(crate) fn capture_campaigns_into(
        &self,
        keyword: usize,
        out: &mut Vec<crate::state::CampaignState>,
    ) -> Result<(), MarketError> {
        for campaign in &self.books[keyword].campaigns {
            let CampaignKind::PerClick {
                nominal,
                click_value,
                roi_target,
            } = campaign.kind
            else {
                return Err(MarketError::NotDurable(campaign.id));
            };
            out.push(crate::state::CampaignState {
                keyword,
                advertiser: campaign.advertiser.index(),
                bid_cents: nominal.cents(),
                click_value_cents: click_value.cents(),
                roi_target,
                click_probs: campaign.click_probs.clone(),
                purchase_probs: campaign.purchase_probs.clone(),
                paused: campaign.paused,
                targeting: campaign.targeting.as_ref().map(|t| t.source().to_string()),
            });
        }
        Ok(())
    }

    /// Exact stream position of a keyword's user-action RNG.
    pub(crate) fn rng_state(&self, keyword: usize) -> [u64; 4] {
        self.books[keyword].rng.state()
    }

    /// Rewinds a keyword's user-action RNG to a captured stream position.
    pub(crate) fn set_rng_state(&mut self, keyword: usize, state: [u64; 4]) {
        self.books[keyword].rng = StdRng::from_state(state);
    }

    /// Total campaigns registered across every keyword.
    pub fn num_campaigns_total(&self) -> usize {
        self.books.iter().map(|b| b.campaigns.len()).sum()
    }

    /// A point-in-time summary of market shape and progress.
    pub fn snapshot(&self) -> MarketSnapshot {
        MarketSnapshot {
            advertisers: self.advertisers.len(),
            campaigns: self.num_campaigns_total(),
            keywords: self.num_keywords,
            slots: self.num_slots,
            shards: 1,
            auctions: self.clock,
        }
    }

    fn check_keyword(&self, keyword: usize) -> Result<usize, MarketError> {
        if keyword < self.num_keywords {
            Ok(keyword)
        } else {
            Err(MarketError::UnknownKeyword {
                keyword,
                num_keywords: self.num_keywords,
            })
        }
    }

    fn check_campaign(&self, id: CampaignId) -> Result<(), MarketError> {
        self.check_keyword(id.keyword)
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        if id.index < self.books[id.keyword].campaigns.len() {
            Ok(())
        } else {
            Err(MarketError::UnknownCampaign(id))
        }
    }

    // -- campaign registration ---------------------------------------------

    /// Registers a campaign for `advertiser` on `keyword`.
    ///
    /// This is the structural slow path: the keyword's engine is rebuilt on
    /// the next serve (its bidder vector grows). Bid changes afterwards go
    /// through the incremental API, which never rebuilds.
    pub fn add_campaign(
        &mut self,
        advertiser: AdvertiserHandle,
        keyword: usize,
        spec: CampaignSpec,
    ) -> Result<CampaignId, MarketError> {
        if advertiser.0 >= self.advertisers.len() {
            return Err(MarketError::UnknownAdvertiser(advertiser));
        }
        let keyword = self.check_keyword(keyword)?;
        let click_probs = match spec.click_probs {
            Some(probs) => probs,
            None => self
                .default_click_probs
                .clone()
                .ok_or(MarketError::MissingClickModel)?,
        };
        validate_click_probs(&click_probs, self.num_slots)?;
        let purchase_probs = match spec.purchase_probs {
            Some(probs) => probs,
            None => self
                .default_purchase_probs
                .clone()
                .unwrap_or_else(|| vec![(0.0, 0.0); self.num_slots]),
        };
        validate_purchase_probs(&purchase_probs, self.num_slots)?;
        if let Some(target) = spec.roi_target {
            check_roi_target(target)?;
        }
        // Every validation must precede the engine teardown below: a
        // rejected registration leaves the keyword's warm engine untouched.
        if let ProgramSpec::PerClick(bid) = &spec.program {
            if !bid.is_positive() && *bid != Money::ZERO {
                return Err(MarketError::NegativeBid(*bid));
            }
        }
        let targeting = match &spec.targeting {
            Some(source) => Some(Arc::new(
                CompiledTargeting::parse(source).map_err(MarketError::InvalidTargeting)?,
            )),
            None => None,
        };

        let book = &mut self.books[keyword];
        // Tear the engine down to `pending` so the bidder vector can grow;
        // the next serve rebuilds it with the enlarged models.
        if let Some(engine) = book.engine.take() {
            book.pending = engine.bidders;
        }
        let id = CampaignId {
            keyword,
            index: book.campaigns.len(),
        };
        let (kind, bidder) = match spec.program {
            ProgramSpec::PerClick(bid) => (
                CampaignKind::PerClick {
                    nominal: bid,
                    click_value: spec.click_value,
                    roi_target: spec.roi_target,
                },
                CampaignBidder {
                    table: BidsTable::empty(), // filled by refresh below
                    program: None,
                    paused: false,
                },
            ),
            ProgramSpec::Table(table) => (
                CampaignKind::Table,
                CampaignBidder {
                    table,
                    program: None,
                    paused: false,
                },
            ),
            ProgramSpec::Program(program) => (
                CampaignKind::Program,
                CampaignBidder {
                    table: BidsTable::empty(),
                    program: Some(program),
                    paused: false,
                },
            ),
        };
        book.pending.push(bidder);
        book.campaigns.push(Campaign {
            id,
            advertiser,
            kind,
            paused: false,
            click_probs,
            purchase_probs,
            targeting,
        });
        if matches!(kind, CampaignKind::PerClick { .. }) {
            self.refresh_per_click(id);
        }
        Ok(id)
    }

    /// The advertiser owning a campaign.
    pub fn campaign_advertiser(&self, id: CampaignId) -> Result<AdvertiserHandle, MarketError> {
        self.check_campaign(id)?;
        Ok(self.books[id.keyword].campaigns[id.index].advertiser)
    }

    /// Whether a campaign is currently paused.
    pub fn is_paused(&self, id: CampaignId) -> Result<bool, MarketError> {
        self.check_campaign(id)?;
        Ok(self.books[id.keyword].campaigns[id.index].paused)
    }

    // -- incremental update API --------------------------------------------

    /// Sets a per-click campaign's bid.
    ///
    /// `O(log n)` on the keyword's logical bid index plus an in-place
    /// rewrite of the campaign's table — the engine, its solver scratch,
    /// and the other campaigns are untouched.
    pub fn update_bid(&mut self, id: CampaignId, bid: Money) -> Result<(), MarketError> {
        self.check_campaign(id)?;
        if !bid.is_positive() && bid != Money::ZERO {
            return Err(MarketError::NegativeBid(bid));
        }
        match &mut self.books[id.keyword].campaigns[id.index].kind {
            CampaignKind::PerClick { nominal, .. } => *nominal = bid,
            _ => return Err(MarketError::NotIncremental(id)),
        }
        self.refresh_per_click(id);
        Ok(())
    }

    /// Sets or clears a per-click campaign's ROI target.
    ///
    /// A target `t` caps the effective bid at `click_value / t` (paying
    /// more than that per click would push the expected return on
    /// investment below `t`); the nominal bid set by
    /// [`Marketplace::update_bid`] is preserved and the cap is re-derived
    /// on every change.
    pub fn set_roi_target(
        &mut self,
        id: CampaignId,
        target: Option<f64>,
    ) -> Result<(), MarketError> {
        self.check_campaign(id)?;
        if let Some(t) = target {
            check_roi_target(t)?;
        }
        match &mut self.books[id.keyword].campaigns[id.index].kind {
            CampaignKind::PerClick { roi_target, .. } => *roi_target = target,
            _ => return Err(MarketError::NotIncremental(id)),
        }
        self.refresh_per_click(id);
        Ok(())
    }

    /// Pauses a campaign: it stops bidding (and, being excluded from the
    /// matching, can never be displayed) until resumed. Works for every
    /// campaign kind and never rebuilds the engine.
    pub fn pause_campaign(&mut self, id: CampaignId) -> Result<(), MarketError> {
        self.set_paused(id, true)
    }

    /// Resumes a paused campaign.
    pub fn resume_campaign(&mut self, id: CampaignId) -> Result<(), MarketError> {
        self.set_paused(id, false)
    }

    fn set_paused(&mut self, id: CampaignId, paused: bool) -> Result<(), MarketError> {
        self.check_campaign(id)?;
        let book = &mut self.books[id.keyword];
        book.campaigns[id.index].paused = paused;
        if matches!(book.campaigns[id.index].kind, CampaignKind::PerClick { .. }) {
            self.refresh_per_click(id);
        } else {
            book.bidder_mut(id.index).paused = paused;
        }
        Ok(())
    }

    /// A per-click campaign's current *effective* bid (nominal bid after
    /// the ROI cap; [`Money::ZERO`] while paused), read from the logical
    /// bid index.
    pub fn current_bid(&self, id: CampaignId) -> Result<Money, MarketError> {
        self.check_campaign(id)?;
        let book = &self.books[id.keyword];
        match book.campaigns[id.index].kind {
            CampaignKind::PerClick { .. } => Ok(book
                .index
                .bid(id.index)
                .map(Money::from_cents)
                .unwrap_or(Money::ZERO)),
            _ => Err(MarketError::NotIncremental(id)),
        }
    }

    /// The highest effective per-click bids on a keyword, descending — a
    /// direct read of the keyword's logical bid index.
    pub fn top_bids(
        &self,
        keyword: usize,
        limit: usize,
    ) -> Result<Vec<(CampaignId, Money)>, MarketError> {
        let keyword = self.check_keyword(keyword)?;
        let book = &self.books[keyword];
        Ok(book
            .index
            .iter_desc()
            .take(limit)
            .map(|(index, cents)| (book.campaigns[index].id, Money::from_cents(cents)))
            .collect())
    }

    /// Recomputes a per-click campaign's effective bid and pushes it into
    /// both views: the keyword's [`AdjustmentList`] (remove + insert,
    /// `O(log n)`) and the campaign's in-place engine table.
    fn refresh_per_click(&mut self, id: CampaignId) {
        let book = &mut self.books[id.keyword];
        let campaign = &book.campaigns[id.index];
        let CampaignKind::PerClick {
            nominal,
            click_value,
            roi_target,
        } = campaign.kind
        else {
            unreachable!("refresh_per_click called on a non-per-click campaign");
        };
        let paused = campaign.paused;
        let effective = effective_bid(nominal, click_value, roi_target);
        book.index.remove(id.index);
        if !paused {
            book.index.insert(id.index, effective.cents());
        }
        let bidder = book.bidder_mut(id.index);
        bidder.table = BidsTable::single_feature(effective);
        bidder.paused = paused;
    }

    // -- query serving ------------------------------------------------------

    /// Serves one query end to end (program evaluation, winner
    /// determination, user action, pricing, program notification) and
    /// returns the fully typed outcome.
    pub fn serve(&mut self, request: QueryRequest) -> Result<AuctionResponse, MarketError> {
        let keyword = self.check_keyword(request.keyword)?;
        self.clock += 1;
        Ok(self.serve_at(keyword, &request.attrs, self.clock))
    }

    /// Serves one query on an already-checked `keyword` as the auction
    /// with (1-based) global time `time`, leaving the market clock alone.
    ///
    /// Shard support: [`crate::sharded::ShardedMarketplace`] owns the
    /// global clock itself and aligns each shard-resident marketplace to
    /// it per query, so bidders observe market-wide time.
    pub(crate) fn serve_at(
        &mut self,
        keyword: usize,
        attrs: &UserAttrs,
        time: u64,
    ) -> AuctionResponse {
        if self.books[keyword].campaigns.is_empty() {
            return AuctionResponse {
                keyword,
                time,
                expected_revenue: 0.0,
                realized_revenue: Money::ZERO,
                placements: Vec::new(),
                charges: Vec::new(),
            };
        }
        self.ensure_engine(keyword);
        let book = &mut self.books[keyword];
        let engine = book.engine.as_mut().expect("engine built above");
        engine.set_time(time - 1);
        let rng = if self.keyword_local_rng {
            &mut book.rng
        } else {
            &mut self.rng
        };
        let report = engine.run_auction((keyword, attrs), rng);
        respond(&book.campaigns, keyword, time, report)
    }

    /// Serves a stream of queries through the persistent per-keyword
    /// engines, aggregating outcomes.
    ///
    /// The stream is split into maximal same-keyword chunks; each chunk is
    /// one [`AuctionEngine::run_batch`] call, so consecutive queries on the
    /// same keyword reuse one revenue matrix and one solver scratch with no
    /// per-query allocation. Auction order (and therefore the RNG stream)
    /// is exactly the order of `requests`.
    pub fn serve_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<MarketBatchReport, MarketError> {
        for request in requests {
            self.check_keyword(request.keyword)?;
        }
        let mut out = MarketBatchReport {
            total: BatchReport::default(),
            per_keyword: vec![BatchReport::default(); self.num_keywords],
            chunks: 0,
        };
        let mut i = 0;
        while i < requests.len() {
            let keyword = requests[i].keyword;
            let mut j = i + 1;
            while j < requests.len() && requests[j].keyword == keyword {
                j += 1;
            }
            let chunk = self.serve_run_at(&requests[i..j], self.clock);
            self.clock += (j - i) as u64;
            out.per_keyword[keyword].absorb(&chunk);
            out.total.absorb(&chunk);
            out.chunks += 1;
            i = j;
        }
        Ok(out)
    }

    /// Serves a run of consecutive same-keyword queries (already checked)
    /// as one [`AuctionEngine::run_batch`] call starting at global time
    /// `start_time` (the clock value *before* the first of the queries),
    /// leaving the market clock alone. A campaign-less keyword serves
    /// `requests.len()` empty pages without touching any engine.
    ///
    /// This is the chunk primitive both [`Marketplace::serve_batch`] and
    /// the sharded fan-out build on. The requests are borrowed straight
    /// from the caller's slice — attributes are never cloned on this path.
    pub(crate) fn serve_run_at(
        &mut self,
        requests: &[QueryRequest],
        start_time: u64,
    ) -> BatchReport {
        let keyword = requests[0].keyword;
        debug_assert!(
            requests.iter().all(|r| r.keyword == keyword),
            "serve_run_at takes one same-keyword run"
        );
        if self.books[keyword].campaigns.is_empty() {
            return BatchReport {
                auctions: requests.len() as u64,
                ..BatchReport::default()
            };
        }
        self.ensure_engine(keyword);
        let book = &mut self.books[keyword];
        let engine = book.engine.as_mut().expect("engine built above");
        engine.set_time(start_time);
        let rng = if self.keyword_local_rng {
            &mut book.rng
        } else {
            &mut self.rng
        };
        engine.run_batch(requests, rng)
    }

    /// Builds (or reuses) the keyword's persistent engine. Only structural
    /// changes (new campaigns) tear it down; bid updates never do.
    fn ensure_engine(&mut self, keyword: usize) {
        let config = self.config;
        let num_keywords = self.num_keywords;
        let num_slots = self.num_slots;
        let book = &mut self.books[keyword];
        if book.engine.is_some() || book.campaigns.is_empty() {
            return;
        }
        let n = book.campaigns.len();
        debug_assert_eq!(book.pending.len(), n, "bidders out of sync with metadata");
        let campaigns = &book.campaigns;
        let clicks = ClickModel::from_fn(n, num_slots, |i, j| campaigns[i].click_probs[j]);
        let purchases = PurchaseModel::from_fn(n, num_slots, |i, j| campaigns[i].purchase_probs[j]);
        let targeting: Vec<Option<Arc<CompiledTargeting>>> =
            campaigns.iter().map(|c| c.targeting.clone()).collect();
        let bidders = std::mem::take(&mut book.pending);
        let mut engine = AuctionEngine::new(bidders, clicks, purchases, num_keywords, config);
        engine.set_targeting(targeting);
        book.engine = Some(engine);
    }
}

fn check_roi_target(target: f64) -> Result<(), MarketError> {
    if target.is_finite() && target > 0.0 {
        Ok(())
    } else {
        Err(MarketError::InvalidRoiTarget(target))
    }
}

/// Effective per-click bid: the nominal bid capped at `click_value /
/// roi_target` (never negative).
fn effective_bid(nominal: Money, click_value: Money, roi_target: Option<f64>) -> Money {
    let capped = match roi_target {
        Some(target) => nominal.min(Money::from_cents(
            (click_value.as_f64() / target).floor() as i64
        )),
        None => nominal,
    };
    capped.max(Money::ZERO)
}

/// Maps an engine [`AuctionReport`] (local bidder indexes) to the typed
/// [`AuctionResponse`] (campaign ids and advertiser handles).
fn respond(
    campaigns: &[Campaign],
    keyword: usize,
    time: u64,
    report: AuctionReport,
) -> AuctionResponse {
    let mut placements = Vec::with_capacity(report.assignment.num_assigned());
    for (j, local) in report.assignment.slot_to_adv.iter().enumerate() {
        let Some(local) = *local else { continue };
        let campaign = &campaigns[local];
        let charge = report
            .charges
            .iter()
            .find(|(adv, _)| *adv == local)
            .map(|(_, m)| *m)
            .unwrap_or(Money::ZERO);
        placements.push(Placement {
            slot: SlotId::from_index0(j),
            campaign: campaign.id,
            advertiser: campaign.advertiser,
            clicked: report.clicked[j],
            purchased: report.purchased[j],
            charge,
        });
    }
    let charges = report
        .charges
        .iter()
        .map(|(local, m)| (campaigns[*local].id, *m))
        .collect();
    AuctionResponse {
        keyword,
        time,
        expected_revenue: report.expected_revenue,
        realized_revenue: report.realized_revenue,
        placements,
        charges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_campaign_market() -> (Marketplace, CampaignId, CampaignId) {
        let mut market = Marketplace::builder()
            .slots(2)
            .keywords(2)
            .seed(11)
            .default_click_probs(vec![0.8, 0.4])
            .build()
            .expect("valid configuration");
        let a = market.register_advertiser("a");
        let b = market.register_advertiser("b");
        let c1 = market
            .add_campaign(a, 0, CampaignSpec::per_click(Money::from_cents(20)))
            .expect("accepted");
        let c2 = market
            .add_campaign(b, 0, CampaignSpec::per_click(Money::from_cents(10)))
            .expect("accepted");
        (market, c1, c2)
    }

    #[test]
    fn serve_places_by_descending_bid() {
        let (mut market, c1, c2) = two_campaign_market();
        let response = market.serve(QueryRequest::new(0)).expect("valid keyword");
        assert_eq!(response.time, 1);
        assert_eq!(market.now(), 1);
        assert_eq!(response.placements.len(), 2);
        assert_eq!(response.placements[0].campaign, c1);
        assert_eq!(response.placements[1].campaign, c2);
        assert!((response.expected_revenue - (0.8 * 20.0 + 0.4 * 10.0)).abs() < 1e-9);
    }

    #[test]
    fn update_bid_takes_effect_without_rebuilding() {
        let (mut market, c1, c2) = two_campaign_market();
        market.serve(QueryRequest::new(0)).expect("warm engine");
        // Flip the order incrementally; the engine must survive in place.
        market
            .update_bid(c1, Money::from_cents(1))
            .expect("per-click");
        assert_eq!(market.current_bid(c1).unwrap(), Money::from_cents(1));
        let response = market.serve(QueryRequest::new(0)).expect("valid keyword");
        assert_eq!(response.placements[0].campaign, c2);
        assert_eq!(
            market.top_bids(0, 10).unwrap(),
            vec![(c2, Money::from_cents(10)), (c1, Money::from_cents(1))]
        );
    }

    #[test]
    fn paused_campaigns_are_never_displayed() {
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(2),
        ] {
            let mut market = Marketplace::builder()
                .slots(2)
                .keywords(1)
                .method(method)
                .default_click_probs(vec![0.9, 0.5])
                .build()
                .expect("valid configuration");
            let a = market.register_advertiser("a");
            let c1 = market
                .add_campaign(a, 0, CampaignSpec::per_click(Money::from_cents(5)))
                .expect("accepted");
            let c2 = market
                .add_campaign(a, 0, CampaignSpec::per_click(Money::from_cents(9)))
                .expect("accepted");
            market.pause_campaign(c1).expect("known campaign");
            for _ in 0..5 {
                let r = market.serve(QueryRequest::new(0)).expect("valid keyword");
                assert!(
                    r.placements.iter().all(|p| p.campaign != c1),
                    "paused campaign displayed under {method:?}"
                );
            }
            // Pausing everything empties the page entirely.
            market.pause_campaign(c2).expect("known campaign");
            let r = market.serve(QueryRequest::new(0)).expect("valid keyword");
            assert!(r.placements.is_empty(), "{method:?} displayed a paused ad");
            assert_eq!(r.expected_revenue, 0.0, "{method:?}");
            // And resuming restores service.
            market.resume_campaign(c1).expect("known campaign");
            let r = market.serve(QueryRequest::new(0)).expect("valid keyword");
            assert_eq!(r.placements.len(), 1);
            assert_eq!(r.placements[0].campaign, c1);
        }
    }

    #[test]
    fn roi_target_caps_the_effective_bid() {
        let mut market = Marketplace::builder()
            .slots(1)
            .default_click_probs(vec![0.5])
            .build()
            .expect("valid configuration");
        let a = market.register_advertiser("a");
        let c = market
            .add_campaign(
                a,
                0,
                CampaignSpec::per_click(Money::from_cents(40)).click_value(Money::from_cents(60)),
            )
            .expect("accepted");
        assert_eq!(market.current_bid(c).unwrap(), Money::from_cents(40));
        // Target ROI 2.0 ⇒ never pay more than 30¢ per 60¢ click.
        market.set_roi_target(c, Some(2.0)).expect("per-click");
        assert_eq!(market.current_bid(c).unwrap(), Money::from_cents(30));
        // The nominal bid survives underneath the cap.
        market.set_roi_target(c, None).expect("per-click");
        assert_eq!(market.current_bid(c).unwrap(), Money::from_cents(40));
        // A cap below zero is floored.
        market.set_roi_target(c, Some(f64::MAX)).expect("per-click");
        assert_eq!(market.current_bid(c).unwrap(), Money::ZERO);
    }

    #[test]
    fn serve_batch_chunks_same_keyword_runs() {
        let (mut market, _, _) = two_campaign_market();
        let requests: Vec<QueryRequest> = [0, 0, 0, 1, 1, 0]
            .iter()
            .map(|&k| QueryRequest::new(k))
            .collect();
        let report = market.serve_batch(&requests).expect("valid keywords");
        assert_eq!(report.total.auctions, 6);
        assert_eq!(report.chunks, 3); // [0,0,0] [1,1] [0]
        assert_eq!(report.per_keyword[0].auctions, 4);
        assert_eq!(report.per_keyword[1].auctions, 2); // keyword 1: no campaigns
        assert_eq!(report.per_keyword[1].filled_slots, 0);
        assert_eq!(market.now(), 6);
    }

    #[test]
    fn serve_batch_matches_looped_serve() {
        let build = || {
            let (market, ..) = two_campaign_market();
            market
        };
        let requests: Vec<QueryRequest> = (0..40).map(|i| QueryRequest::new(i % 2)).collect();
        let mut looped = build();
        let mut expected = BatchReport::default();
        for request in &requests {
            let r = looped.serve(request.clone()).expect("valid keyword");
            expected.auctions += 1;
            expected.expected_revenue += r.expected_revenue;
            expected.filled_slots += r.placements.len() as u64;
            expected.clicks += r.placements.iter().filter(|p| p.clicked).count() as u64;
            expected.purchases += r.placements.iter().filter(|p| p.purchased).count() as u64;
            expected.realized_revenue += r.realized_revenue;
        }
        let mut batched = build();
        let got = batched.serve_batch(&requests).expect("valid keywords");
        assert!((got.total.expected_revenue - expected.expected_revenue).abs() < 1e-9);
        assert_eq!(
            BatchReport {
                expected_revenue: expected.expected_revenue,
                ..got.total
            },
            expected
        );
    }

    #[test]
    fn typed_errors_cover_the_api() {
        let (mut market, c1, _) = two_campaign_market();
        let ghost = AdvertiserHandle(99);
        assert_eq!(
            market.add_campaign(ghost, 0, CampaignSpec::per_click(Money::ZERO)),
            Err(MarketError::UnknownAdvertiser(ghost))
        );
        assert!(matches!(
            market.serve(QueryRequest::new(9)),
            Err(MarketError::UnknownKeyword { keyword: 9, .. })
        ));
        let bogus = CampaignId {
            keyword: 0,
            index: 77,
        };
        assert_eq!(
            market.update_bid(bogus, Money::ZERO),
            Err(MarketError::UnknownCampaign(bogus))
        );
        assert_eq!(
            market.update_bid(c1, Money::from_cents(-3)),
            Err(MarketError::NegativeBid(Money::from_cents(-3)))
        );
        assert_eq!(
            market.set_roi_target(c1, Some(-1.0)),
            Err(MarketError::InvalidRoiTarget(-1.0))
        );
        let a = market.register_advertiser("tables");
        let t = market
            .add_campaign(
                a,
                0,
                CampaignSpec::table(BidsTable::single_feature(Money::from_cents(2))),
            )
            .expect("accepted");
        assert_eq!(
            market.update_bid(t, Money::from_cents(9)),
            Err(MarketError::NotIncremental(t))
        );
        assert_eq!(
            Marketplace::builder().slots(0).build().err(),
            Some(MarketError::NoSlots)
        );
        assert_eq!(
            Marketplace::builder()
                .default_click_probs(vec![0.5, 0.5])
                .build()
                .err(),
            Some(MarketError::ModelDimension {
                expected: 1,
                got: 2
            })
        );
        // Errors are std errors with readable messages.
        let err: Box<dyn std::error::Error> = Box::new(MarketError::MissingClickModel);
        assert!(err.to_string().contains("click"));
    }

    #[test]
    fn sql_program_campaigns_serve_like_equivalent_static_bids() {
        // A SQL program that always bids a constant must serve exactly like
        // a per-click campaign at the same bid, auction for auction.
        let build = |sql: bool| {
            let mut market = Marketplace::builder()
                .slots(2)
                .seed(3)
                .default_click_probs(vec![0.7, 0.3])
                .build()
                .expect("valid configuration");
            let a = market.register_advertiser("a");
            let spec = if sql {
                CampaignSpec::sql_program(
                    "",
                    "CREATE TABLE Query (kw INT); \
                     CREATE TABLE Bids (formula TEXT, value INT); \
                     INSERT INTO Bids VALUES ('Click', :bid);",
                    &ssa_minidb::Params::new().bind("bid", 25),
                )
                .expect("well-formed program")
            } else {
                CampaignSpec::per_click(Money::from_cents(25))
            };
            market.add_campaign(a, 0, spec).expect("accepted");
            market
                .add_campaign(a, 0, CampaignSpec::per_click(Money::from_cents(10)))
                .expect("accepted");
            market
        };
        let mut sql = build(true);
        let mut fixed = build(false);
        for _ in 0..20 {
            let r = sql.serve(QueryRequest::new(0)).expect("valid keyword");
            let t = fixed.serve(QueryRequest::new(0)).expect("valid keyword");
            assert_eq!(r, t);
        }
        // Pausing a SQL campaign excludes it like any other program.
        let id = CampaignId::new(0, 0);
        sql.pause_campaign(id).expect("known campaign");
        let r = sql.serve(QueryRequest::new(0)).expect("valid keyword");
        assert!(r.placements.iter().all(|p| p.campaign != id));
    }

    #[test]
    fn rejected_registration_leaves_the_market_untouched() {
        // A failing add_campaign must be a pure no-op: same campaign count
        // and byte-for-byte identical serving as a twin market that never
        // saw the bad request (in particular, the warm engine survives).
        let (mut market, _, _) = two_campaign_market();
        let (mut twin, _, _) = two_campaign_market();
        market.serve(QueryRequest::new(0)).expect("warm engine");
        twin.serve(QueryRequest::new(0)).expect("warm engine");
        let a = market.register_advertiser("bad");
        assert_eq!(
            market.add_campaign(a, 0, CampaignSpec::per_click(Money::from_cents(-1))),
            Err(MarketError::NegativeBid(Money::from_cents(-1)))
        );
        assert_eq!(market.num_campaigns(0).unwrap(), 2);
        for _ in 0..3 {
            let r = market.serve(QueryRequest::new(0)).expect("valid keyword");
            let t = twin.serve(QueryRequest::new(0)).expect("valid keyword");
            assert_eq!(r, t);
        }
    }

    #[test]
    fn adding_a_campaign_rebuilds_only_that_keyword() {
        let (mut market, c1, _) = two_campaign_market();
        market.serve(QueryRequest::new(0)).expect("warm engine");
        let a = market.register_advertiser("late");
        let c3 = market
            .add_campaign(a, 0, CampaignSpec::per_click(Money::from_cents(50)))
            .expect("accepted");
        // The pre-rebuild incremental state survives the rebuild.
        market
            .update_bid(c1, Money::from_cents(2))
            .expect("per-click");
        let response = market.serve(QueryRequest::new(0)).expect("valid keyword");
        assert_eq!(response.placements[0].campaign, c3);
        assert_eq!(market.num_campaigns(0).unwrap(), 3);
        assert_eq!(market.current_bid(c1).unwrap(), Money::from_cents(2));
    }
}
