//! The mutation-journal hook: how a durability layer observes a
//! [`ShardedMarketplace`] without the marketplace knowing about files.
//!
//! A [`MutationJournal`] attached via
//! [`ShardedMarketplace::set_journal`] receives one [`MutationRecord`]
//! *after* every successfully applied control-plane mutation and every
//! served query. Two properties make this sufficient for exact recovery:
//!
//! * **Journal-after-apply**: a record is only emitted once the mutation
//!   succeeded, so a crash between apply and journal loses an operation
//!   that was never acknowledged — the recovered state is always a
//!   consistent prefix of the acknowledged history.
//! * **Determinism**: auction outcomes are a pure function of the campaign
//!   book, the clock, and the per-keyword RNG streams, so journaling just
//!   the *queries served* (keyword plus user attributes, not the
//!   outcomes) is enough — replaying the
//!   serves re-draws the identical clicks, purchases, and charges, and
//!   leaves the RNG streams at the identical positions.
//!
//! When no journal is attached the hot serve path pays a single
//! `Option::is_some` branch and nothing else.

use crate::marketplace::{AdvertiserHandle, CampaignId, CampaignSpec, MarketError, QueryRequest};
use crate::sharded::ShardedMarketplace;
use ssa_bidlang::targeting::UserAttrs;
use ssa_bidlang::Money;

/// One journalled marketplace operation.
///
/// The set mirrors the wire protocol's mutating requests: per-click
/// campaigns only (the kind [`CampaignSpec::per_click`] builds). Campaigns
/// running custom programs or fixed tables cannot be serialized and are
/// rejected with [`MarketError::NotDurable`] while a journal is attached.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationRecord {
    /// [`ShardedMarketplace::register_advertiser`].
    RegisterAdvertiser {
        /// Display name registered.
        name: String,
    },
    /// [`ShardedMarketplace::add_campaign`] with a per-click spec, exactly
    /// as supplied (models left `None` resolve through builder defaults at
    /// replay, same as at first application).
    AddCampaign {
        /// Registration index of the advertiser.
        advertiser: usize,
        /// Keyword the campaign bids on.
        keyword: usize,
        /// Nominal per-click bid, in cents.
        bid_cents: i64,
        /// Click value, in cents.
        click_value_cents: i64,
        /// Initial ROI target, if supplied.
        roi_target: Option<f64>,
        /// Per-slot click probabilities, if supplied.
        click_probs: Option<Vec<f64>>,
        /// Per-slot purchase probabilities, if supplied.
        purchase_probs: Option<Vec<(f64, f64)>>,
        /// Targeting expression source, if supplied (re-parsed at replay
        /// through the same validation path as the original registration).
        targeting: Option<String>,
    },
    /// [`ShardedMarketplace::update_bid`].
    UpdateBid {
        /// Campaign's keyword.
        keyword: usize,
        /// Campaign's index within the keyword.
        index: usize,
        /// New nominal bid, in cents.
        bid_cents: i64,
    },
    /// [`ShardedMarketplace::pause_campaign`].
    PauseCampaign {
        /// Campaign's keyword.
        keyword: usize,
        /// Campaign's index within the keyword.
        index: usize,
    },
    /// [`ShardedMarketplace::resume_campaign`].
    ResumeCampaign {
        /// Campaign's keyword.
        keyword: usize,
        /// Campaign's index within the keyword.
        index: usize,
    },
    /// [`ShardedMarketplace::set_roi_target`].
    SetRoiTarget {
        /// Campaign's keyword.
        keyword: usize,
        /// Campaign's index within the keyword.
        index: usize,
        /// New target (`None` clears it).
        target: Option<f64>,
    },
    /// One [`ShardedMarketplace::serve`] call (outcome re-derived at
    /// replay).
    Serve {
        /// The keyword queried.
        keyword: usize,
        /// The query's typed user attributes (empty for legacy queries).
        /// Journaled because targeting makes outcomes depend on them.
        attrs: UserAttrs,
    },
    /// One [`ShardedMarketplace::serve_batch`] call, in stream order.
    ServeBatch {
        /// The queries served, in order: keyword plus user attributes.
        queries: Vec<(usize, UserAttrs)>,
    },
}

/// A sink for [`MutationRecord`]s; see the [module docs](self).
///
/// `Send` so a journalled marketplace can still move to a serving thread;
/// `Debug` so the marketplace keeps its derived `Debug`.
pub trait MutationJournal: Send + std::fmt::Debug {
    /// Called once per successfully applied operation, in application
    /// order. Implementations that cannot persist the record must fail
    /// loudly (panic): continuing would silently break the recovery
    /// guarantee.
    fn record(&mut self, record: &MutationRecord);
}

/// Replays one journalled operation against a marketplace, discarding any
/// auction output. Recovery applies records to a journal-free marketplace;
/// applying to a journalled one would re-journal the operation.
pub fn apply(market: &mut ShardedMarketplace, record: &MutationRecord) -> Result<(), MarketError> {
    match record {
        MutationRecord::RegisterAdvertiser { name } => {
            market.register_advertiser(name.clone());
            Ok(())
        }
        MutationRecord::AddCampaign {
            advertiser,
            keyword,
            bid_cents,
            click_value_cents,
            roi_target,
            click_probs,
            purchase_probs,
            targeting,
        } => {
            let mut spec = CampaignSpec::per_click(Money::from_cents(*bid_cents))
                .click_value(Money::from_cents(*click_value_cents));
            if let Some(target) = roi_target {
                spec = spec.roi_target(*target);
            }
            if let Some(probs) = click_probs {
                spec = spec.click_probs(probs.clone());
            }
            if let Some(probs) = purchase_probs {
                spec = spec.purchase_probs(probs.clone());
            }
            if let Some(source) = targeting {
                spec = spec.targeting(source.clone());
            }
            market
                .add_campaign(AdvertiserHandle::from_index(*advertiser), *keyword, spec)
                .map(|_| ())
        }
        MutationRecord::UpdateBid {
            keyword,
            index,
            bid_cents,
        } => market.update_bid(
            CampaignId::from_parts(*keyword, *index),
            Money::from_cents(*bid_cents),
        ),
        MutationRecord::PauseCampaign { keyword, index } => {
            market.pause_campaign(CampaignId::from_parts(*keyword, *index))
        }
        MutationRecord::ResumeCampaign { keyword, index } => {
            market.resume_campaign(CampaignId::from_parts(*keyword, *index))
        }
        MutationRecord::SetRoiTarget {
            keyword,
            index,
            target,
        } => market.set_roi_target(CampaignId::from_parts(*keyword, *index), *target),
        MutationRecord::Serve { keyword, attrs } => market
            .serve(QueryRequest::with_attrs(*keyword, attrs.clone()))
            .map(|_| ()),
        MutationRecord::ServeBatch { queries } => {
            let requests: Vec<QueryRequest> = queries
                .iter()
                .map(|(kw, attrs)| QueryRequest::with_attrs(*kw, attrs.clone()))
                .collect();
            market.serve_batch(&requests).map(|_| ())
        }
    }
}
