//! Full-fidelity marketplace state capture for the durability layer.
//!
//! [`MarketState`] is everything needed to rebuild a
//! [`crate::sharded::ShardedMarketplace`] **bit-identically**: the build
//! configuration, the advertiser roster, every per-click campaign's
//! nominal bid state, the global clock, and the exact stream position of
//! each keyword's user-action RNG. It is produced by
//! [`crate::sharded::ShardedMarketplace::capture_state`] and consumed by
//! [`crate::sharded::ShardedMarketplace::from_state`]; the `ssa_durable`
//! crate serializes it as the snapshot half of its snapshot + WAL scheme.
//!
//! # Why this is sufficient
//!
//! The marketplace is deterministic apart from the user-action RNG
//! streams, and a sharded marketplace draws those streams *per keyword*
//! (see [`crate::marketplace::MarketplaceBuilder::keyword_local_rng`]).
//! Engines, solver scratch, and warm-start caches are pure execution
//! state — rebuilding them lazily from the campaign book reproduces the
//! same auctions bit for bit (the repository's solver-equivalence
//! guarantee). So campaigns + clock + RNG positions pin down every future
//! auction outcome exactly.

use crate::engine::WdMethod;
use crate::pricing::PricingScheme;

/// The build-time configuration of a sharded marketplace, as needed to
/// reconstruct it via [`crate::marketplace::MarketplaceBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfigState {
    /// Ad slots per results page.
    pub slots: usize,
    /// Size of the keyword universe.
    pub keywords: usize,
    /// Marketplace RNG seed (keyword stream seeds derive from it).
    pub seed: u64,
    /// Winner-determination method.
    pub method: WdMethod,
    /// Pricing rule.
    pub pricing: PricingScheme,
    /// Shard count.
    pub shards: usize,
    /// Whether winner determination runs the top-k pruned solver.
    pub pruned: bool,
    /// Whether unchanged auctions skip the refill + solve.
    pub warm_start: bool,
    /// Builder-level default click model, if one was configured.
    pub default_click_probs: Option<Vec<f64>>,
    /// Builder-level default purchase model, if one was configured.
    pub default_purchase_probs: Option<Vec<(f64, f64)>>,
}

/// One per-click campaign's durable state: enough to re-register it via
/// [`crate::marketplace::CampaignSpec::per_click`] and reproduce its
/// [`crate::marketplace::CampaignId`], effective bid, and outcome models
/// exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    /// The keyword the campaign bids on.
    pub keyword: usize,
    /// Registration index of the owning advertiser.
    pub advertiser: usize,
    /// Nominal per-click bid, in cents (the ROI cap is re-derived).
    pub bid_cents: i64,
    /// Advertiser's value of a click, in cents.
    pub click_value_cents: i64,
    /// ROI target, if one is set.
    pub roi_target: Option<f64>,
    /// Per-slot click probabilities (always resolved, never defaulted).
    pub click_probs: Vec<f64>,
    /// Per-slot purchase probabilities `(p | click, p | no click)`.
    pub purchase_probs: Vec<(f64, f64)>,
    /// Whether the campaign is currently paused.
    pub paused: bool,
    /// Targeting expression source, if the campaign targets (re-parsed and
    /// re-compiled on restore through the same path as registration).
    pub targeting: Option<String>,
}

/// A complete, bit-identical checkpoint of a
/// [`crate::sharded::ShardedMarketplace`].
///
/// Campaigns appear grouped by keyword in ascending keyword order and, within
/// a keyword, in registration order — replaying them through
/// `add_campaign` reproduces every [`crate::marketplace::CampaignId`].
#[derive(Debug, Clone, PartialEq)]
pub struct MarketState {
    /// Build configuration.
    pub config: MarketConfigState,
    /// Advertiser display names in registration order.
    pub advertisers: Vec<String>,
    /// Every campaign's durable state (keyword-major registration order).
    pub campaigns: Vec<CampaignState>,
    /// Global market clock: auctions served so far.
    pub clock: u64,
    /// Exact xoshiro256** state of each keyword's user-action RNG stream,
    /// indexed by keyword (read from the owning shard).
    pub rng_states: Vec<[u64; 4]>,
}
