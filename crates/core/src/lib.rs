//! # ssa-core — the sponsored search auction engine
//!
//! This crate assembles the paper's full auction pipeline (Section I-B):
//!
//! 1. **Program evaluation** — bidders (anything implementing [`Bidder`])
//!    are shown the query and emit multi-feature [`BidsTable`]s.
//! 2. **Winner determination** — the bids plus the outcome-probability
//!    models are folded into an expected-revenue matrix
//!    ([`revenue::revenue_matrix`], the Theorem 2 construction), which any
//!    of the four [`WdMethod`]s solves: LP (network simplex), H (full
//!    Hungarian), RH (reduced graph), RHTALU (reduced graph over
//!    threshold-algorithm selection with logically-updated indexes).
//! 3. **User action** — clicks and purchases are sampled from the same
//!    probability models.
//! 4. **Pricing and payment** — generalised second pricing or VCG
//!    ([`pricing`]).
//!
//! Winner determination dispatches through the `ssa_matching::WdSolver`
//! trait: [`AuctionEngine`] owns a boxed solver with persistent scratch and
//! a preallocated revenue matrix, and the batched entry points
//! ([`AuctionEngine::run_batch`], [`AuctionEngine::stream`]) refill them in
//! place — no per-auction matrix allocation on the hot path.
//!
//! Above the engine sits the [`marketplace`] service facade: a long-lived
//! [`marketplace::Marketplace`] owning registered advertisers,
//! per-keyword campaigns, and one persistent engine+solver per keyword,
//! with a typed query-serving API and an incremental update API backed by
//! the Section IV-B [`logical`] adjustment lists. `AuctionEngine` remains
//! the documented low-level escape hatch.
//!
//! For multi-core serving, [`sharded::ShardedMarketplace`] partitions the
//! keyword universe across worker shards by stable hash and fans
//! `serve_batch` out over scoped threads — with bit-identical auction
//! outcomes at every shard count (see the [`sharded`] module docs for the
//! keyword-local-RNG equivalence guarantee).
//!
//! Campaigns can be *SQL bidding programs* (Section II-B): [`sqlprog`]
//! packages a script pair (schema + triggers, executed by the embedded
//! `ssa_minidb` engine through its prepared-statement layer) as a
//! [`Bidder`], registered via
//! [`marketplace::CampaignSpec::sql_program`].
//!
//! The Section III-F heavyweight/lightweight extension lives in
//! [`heavyweight`].
//!
//! [`BidsTable`]: ssa_bidlang::BidsTable

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidder;
pub mod engine;
pub mod heavyweight;
pub mod journal;
pub mod logical;
pub mod marketplace;
pub mod pricing;
pub mod prob;
pub mod revenue;
pub mod sharded;
pub mod sqlprog;
pub mod state;

pub use bidder::{Bidder, BidderOutcome, QueryContext, TableBidder};
pub use engine::{
    AuctionEngine, AuctionReport, AuctionStream, BatchReport, EngineConfig, EngineQuery,
    ParseMethodError, PhaseStats, WdMethod,
};
pub use heavyweight::{solve_heavyweight, HeavyweightInstance, HeavyweightSolution};
pub use journal::{MutationJournal, MutationRecord};
pub use marketplace::{
    AdvertiserHandle, AuctionResponse, CampaignId, CampaignSpec, MarketBatchReport, MarketError,
    MarketSnapshot, Marketplace, MarketplaceBuilder, Placement, QueryRequest,
};
pub use pricing::{ParsePricingError, PricingScheme, SlotPrice};
pub use prob::{ClickModel, PurchaseModel, SeparableClickModel};
pub use revenue::{expected_revenue, revenue_matrix, revenue_matrix_into, NoSlotValues};
pub use sharded::{parse_shards, shard_of_keyword, ParseShardsError, ShardedMarketplace};
pub use sqlprog::{SqlProgramBidder, SqlProgramError};
pub use ssa_bidlang::targeting::{AttrValue, CompiledTargeting, TargetParseError, UserAttrs};
pub use state::{CampaignState, MarketConfigState, MarketState};
