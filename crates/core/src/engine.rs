//! The auction engine: program evaluation → winner determination → user
//! action → pricing, per Section I-B's six-step flow.
//!
//! All execution paths share one persistent auction pipeline:
//!
//! * [`AuctionEngine::run_auction`] — the single-auction convenience path;
//!   it runs the same in-place hot step as the batched paths and
//!   materialises a fully-owned [`AuctionReport`] from the scratch buffers.
//! * [`AuctionEngine::run_batch`] / [`AuctionEngine::stream`] — the hot
//!   path. The engine owns a boxed [`WdSolver`] plus preallocated matrix,
//!   assignment, and charge buffers; each auction refills them in place
//!   (via [`revenue_matrix_into`]), so a batch performs **no per-auction
//!   revenue-matrix allocation**. `run_batch` aggregates into a
//!   [`BatchReport`]; `stream` lazily materialises per-auction reports.
//!
//! Every hot step is instrumented with per-phase wall-clock tallies
//! ([`PhaseStats`]), and two exactness-preserving optimisations ride the
//! persistent state: top-k candidate pruning
//! ([`EngineConfig::pruned`]) and warm-started assignments
//! ([`EngineConfig::warm_start`], which skips the matrix refill and solve
//! outright when no bid changed since the previous auction on the engine).

use crate::bidder::{Bidder, BidderOutcome, QueryContext};
use crate::pricing::{gsp_prices_into, vcg_prices, PricingScheme, SlotPrice};
use crate::prob::{ClickModel, PurchaseModel};
use crate::revenue::{revenue_matrix_into, revenue_matrix_refresh_row, NoSlotValues};
use rand::Rng;
use ssa_bidlang::targeting::{CompiledTargeting, UserAttrs};
use ssa_bidlang::{AdvertiserView, BidsTable, Money, SlotId};
use ssa_matching::{
    Assignment, HungarianSolver, ParallelReducedSolver, PrunedSolver, ReducedSolver, RevenueMatrix,
    WdSolver,
};
use ssa_simplex::NetworkSimplexSolver;
use std::sync::Arc;
use std::time::Instant;

/// A query as the engine sees it: a keyword plus typed user attributes.
///
/// The engine's run paths are generic over this trait so legacy call
/// sites passing bare keyword indices (`run_batch(&[0usize, 0], …)`)
/// compile unchanged — a `usize` is a query with
/// [`UserAttrs::empty_ref`] attributes — while the marketplace passes
/// full `QueryRequest`s (which implement this trait) by reference, with
/// zero clones on the hot path.
pub trait EngineQuery {
    /// The keyword index queried.
    fn keyword(&self) -> usize;
    /// The typed user attributes targeting expressions evaluate against.
    fn attrs(&self) -> &UserAttrs;
}

impl EngineQuery for usize {
    fn keyword(&self) -> usize {
        *self
    }

    fn attrs(&self) -> &UserAttrs {
        UserAttrs::empty_ref()
    }
}

impl<T: EngineQuery + ?Sized> EngineQuery for &T {
    fn keyword(&self) -> usize {
        (**self).keyword()
    }

    fn attrs(&self) -> &UserAttrs {
        (**self).attrs()
    }
}

/// A keyword paired with borrowed attributes — the zero-copy query shape
/// service facades use when keyword and attributes live in different
/// places.
impl EngineQuery for (usize, &UserAttrs) {
    fn keyword(&self) -> usize {
        self.0
    }

    fn attrs(&self) -> &UserAttrs {
        self.1
    }
}

/// Which winner-determination algorithm the engine runs (the four methods
/// of Section V, minus the program-evaluation reductions which live in the
/// workload harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WdMethod {
    /// Method LP: the winner-determination linear program solved with the
    /// (network) simplex method.
    Lp,
    /// Method H: the Hungarian algorithm on the full bipartite graph.
    Hungarian,
    /// Method RH: the Section III-E reduced bipartite graph.
    Reduced,
    /// Method RH with the Section III-E parallel tree aggregation, using
    /// the given number of threads.
    ReducedParallel(usize),
}

impl WdMethod {
    /// Constructs the reusable [`WdSolver`] implementing this method. The
    /// returned solver owns its scratch buffers; keep it alive across
    /// auctions to amortise allocation.
    pub fn new_solver(self) -> Box<dyn WdSolver> {
        match self {
            WdMethod::Lp => Box::new(NetworkSimplexSolver::new()),
            WdMethod::Hungarian => Box::new(HungarianSolver::new()),
            WdMethod::Reduced => Box::new(ReducedSolver::new()),
            WdMethod::ReducedParallel(threads) => Box::new(ParallelReducedSolver::new(threads)),
        }
    }
}

impl std::fmt::Display for WdMethod {
    /// The CLI names: `lp`, `h`, `rh`, and `rhp:<threads>`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WdMethod::Lp => f.write_str("lp"),
            WdMethod::Hungarian => f.write_str("h"),
            WdMethod::Reduced => f.write_str("rh"),
            WdMethod::ReducedParallel(threads) => write!(f, "rhp:{threads}"),
        }
    }
}

/// Error returned when parsing a [`WdMethod`] from its CLI name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMethodError {
    /// The name matched none of `lp`, `h`, `rh`, `rhp:<threads>`.
    UnknownMethod(String),
    /// `rhp:<threads>` carried a suffix that is not an unsigned integer.
    InvalidThreadCount(String),
    /// Bare `rhp` (no `:threads` suffix) — the parallel reduction's
    /// degree of parallelism must be explicit, not silently defaulted.
    MissingThreadCount,
    /// `rhp:0` — the parallel reduction needs at least one thread.
    ZeroThreads,
}

impl std::fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseMethodError::UnknownMethod(name) => write!(
                f,
                "unknown winner-determination method {name:?} \
                 (expected lp, h, rh, or rhp:<threads>)"
            ),
            ParseMethodError::InvalidThreadCount(raw) => {
                write!(f, "invalid thread count in {raw:?}")
            }
            ParseMethodError::MissingThreadCount => f.write_str(
                "method \"rhp\" needs an explicit thread count: \
                 write rhp:<threads>, e.g. rhp:4",
            ),
            ParseMethodError::ZeroThreads => f.write_str("thread count must be positive"),
        }
    }
}

impl std::error::Error for ParseMethodError {}

impl std::str::FromStr for WdMethod {
    type Err = ParseMethodError;

    /// Parses `lp`, `h`, `rh`, or `rhp:<threads>`, case-insensitively.
    ///
    /// Bare `rhp` is rejected with
    /// [`ParseMethodError::MissingThreadCount`]: the parallel method's
    /// thread count is part of its identity (it is what Figure 12's RHP
    /// curves vary), so it must be spelled out rather than silently
    /// defaulted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "lp" => Ok(WdMethod::Lp),
            "h" | "hungarian" => Ok(WdMethod::Hungarian),
            "rh" | "reduced" => Ok(WdMethod::Reduced),
            "rhp" => Err(ParseMethodError::MissingThreadCount),
            other => {
                if let Some(threads) = other.strip_prefix("rhp:") {
                    let threads: usize = threads
                        .parse()
                        .map_err(|_| ParseMethodError::InvalidThreadCount(s.to_string()))?;
                    if threads == 0 {
                        return Err(ParseMethodError::ZeroThreads);
                    }
                    Ok(WdMethod::ReducedParallel(threads))
                } else {
                    Err(ParseMethodError::UnknownMethod(other.to_string()))
                }
            }
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Winner-determination algorithm.
    pub method: WdMethod,
    /// Pricing rule.
    pub pricing: PricingScheme,
    /// Wrap the solver in the Section III-E top-k
    /// [`ssa_matching::PrunedSolver`]: winner determination
    /// runs on the union of each slot's top-k bidders (ties at the floor
    /// kept), which is bit-identical to the full solve but touches
    /// `O(k²)` rather than `n` advertisers when bids are dispersed.
    pub pruned: bool,
    /// Skip the matrix refill and solve entirely when no bidder's table
    /// changed since the engine's previous auction (the previous
    /// assignment is provably identical: solvers are deterministic and
    /// draw no randomness). Exactness-preserving; on by default.
    pub warm_start: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            method: WdMethod::Reduced,
            pricing: PricingScheme::Gsp,
            pruned: false,
            warm_start: true,
        }
    }
}

/// Everything that happened in one auction.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionReport {
    /// The winning allocation (`slot_to_adv`).
    pub assignment: Assignment,
    /// Expected revenue of the allocation (including no-slot base values).
    pub expected_revenue: f64,
    /// Realised clicks per slot (parallel to `assignment.slot_to_adv`).
    pub clicked: Vec<bool>,
    /// Realised purchases per slot.
    pub purchased: Vec<bool>,
    /// Realised charge per advertiser (only winners are charged under GSP /
    /// VCG).
    pub charges: Vec<(usize, Money)>,
    /// Total realised revenue.
    pub realized_revenue: Money,
}

/// Per-phase wall-clock tallies and solve diagnostics for a batched run,
/// following the paper's Section I-B step names: program evaluation,
/// revenue-matrix fill, winner-determination solve, pricing, and settlement
/// (user-action sampling plus bidder notification). Timings are cheap
/// [`Instant`] differences taken once per phase per auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Nanoseconds evaluating bidding programs.
    pub program_eval_ns: u64,
    /// Nanoseconds diffing bids and (re)filling the revenue matrix.
    pub matrix_fill_ns: u64,
    /// Nanoseconds in the winner-determination solver.
    pub solve_ns: u64,
    /// Nanoseconds computing charges.
    pub pricing_ns: u64,
    /// Nanoseconds sampling user actions and notifying bidders.
    pub settlement_ns: u64,
    /// Winner-determination solves actually executed.
    pub solves: u64,
    /// Auctions whose solve was skipped because no bid changed since the
    /// engine's previous auction (warm start).
    pub warm_solves: u64,
    /// Summed over executed solves: the number of advertisers the solver
    /// actually considered (`n` for unpruned full-matrix methods, the
    /// candidate-set size for pruned/reduced ones).
    pub candidates: u64,
}

impl PhaseStats {
    /// Folds another tally into this one.
    pub fn absorb(&mut self, other: &PhaseStats) {
        self.program_eval_ns += other.program_eval_ns;
        self.matrix_fill_ns += other.matrix_fill_ns;
        self.solve_ns += other.solve_ns;
        self.pricing_ns += other.pricing_ns;
        self.settlement_ns += other.settlement_ns;
        self.solves += other.solves;
        self.warm_solves += other.warm_solves;
        self.candidates += other.candidates;
    }

    /// Total instrumented nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.program_eval_ns
            + self.matrix_fill_ns
            + self.solve_ns
            + self.pricing_ns
            + self.settlement_ns
    }

    /// Mean candidate-set size per executed solve (0 when none ran).
    pub fn avg_candidates(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.candidates as f64 / self.solves as f64
        }
    }
}

/// Aggregate outcome of a batched run: everything the serving layer needs
/// for accounting without materialising per-auction reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchReport {
    /// Auctions run.
    pub auctions: u64,
    /// Sum of winner-determination objectives (expected revenue, cents).
    pub expected_revenue: f64,
    /// Slots that received an advertiser, summed over auctions.
    pub filled_slots: u64,
    /// Realised clicks.
    pub clicks: u64,
    /// Realised purchases.
    pub purchases: u64,
    /// Total realised revenue.
    pub realized_revenue: Money,
    /// Per-phase timings and solve diagnostics. Excluded from `PartialEq`:
    /// two runs with identical auction outcomes compare equal no matter how
    /// long each phase took or which exactness-preserving shortcuts fired.
    pub phases: PhaseStats,
}

impl PartialEq for BatchReport {
    fn eq(&self, other: &Self) -> bool {
        self.auctions == other.auctions
            && self.expected_revenue == other.expected_revenue
            && self.filled_slots == other.filled_slots
            && self.clicks == other.clicks
            && self.purchases == other.purchases
            && self.realized_revenue == other.realized_revenue
    }
}

impl BatchReport {
    /// Folds another report into this one (the aggregate of two consecutive
    /// batches); used by the `Marketplace` facade to merge per-keyword
    /// chunks into a market-wide total.
    pub fn absorb(&mut self, other: &BatchReport) {
        self.auctions += other.auctions;
        self.expected_revenue += other.expected_revenue;
        self.filled_slots += other.filled_slots;
        self.clicks += other.clicks;
        self.purchases += other.purchases;
        self.realized_revenue += other.realized_revenue;
        self.phases.absorb(&other.phases);
    }
}

/// Hot-path scratch reused across batched auctions; every buffer is refilled
/// in place each step.
#[derive(Debug)]
struct BatchScratch {
    bids: Vec<BidsTable>,
    /// The previous auction's bid tables, kept for the warm-start diff.
    prev_bids: Vec<BidsTable>,
    /// `matrix`/`base` reflect `bids` from a completed hot step, so the
    /// warm-start path may refresh only the rows whose bids changed.
    have_prev: bool,
    /// `assignment` is the current solver's output for `matrix`, so an
    /// unchanged auction may skip the solve outright.
    solved: bool,
    matrix: RevenueMatrix,
    base: NoSlotValues,
    assignment: Assignment,
    clicked: Vec<bool>,
    purchased: Vec<bool>,
    charges: Vec<(usize, Money)>,
    prices: Vec<SlotPrice>,
    adv_to_slot: Vec<Option<usize>>,
    price_by_adv: Vec<Money>,
    phases: PhaseStats,
}

impl BatchScratch {
    fn new(num_slots: usize) -> Self {
        BatchScratch {
            bids: Vec::new(),
            prev_bids: Vec::new(),
            have_prev: false,
            solved: false,
            matrix: RevenueMatrix::zeros(0, num_slots.max(1)),
            base: NoSlotValues::default(),
            assignment: Assignment::default(),
            clicked: Vec::new(),
            purchased: Vec::new(),
            charges: Vec::new(),
            prices: Vec::new(),
            adv_to_slot: Vec::new(),
            price_by_adv: Vec::new(),
            phases: PhaseStats::default(),
        }
    }
}

/// The auction engine over a population of bidders.
#[derive(Debug)]
pub struct AuctionEngine<B: Bidder> {
    /// The bidding programs.
    pub bidders: Vec<B>,
    /// Click probability model.
    pub clicks: ClickModel,
    /// Purchase probability model.
    pub purchases: PurchaseModel,
    /// Configuration.
    pub config: EngineConfig,
    /// Keyword universe size, surfaced to bidders.
    pub num_keywords: usize,
    time: u64,
    solver: Box<dyn WdSolver>,
    solver_method: WdMethod,
    solver_pruned: bool,
    /// Per-bidder targeting matchers, parallel to `bidders` (`None` =
    /// untargeted; an empty vector = no campaign targets). A bidder whose
    /// matcher rejects the query's attributes is EXCLUDED before the
    /// matrix fill: its program is not evaluated and it contributes an
    /// empty bid table, exactly like a paused campaign.
    targeting: Vec<Option<Arc<CompiledTargeting>>>,
    scratch: BatchScratch,
}

/// The solver a config asks for: the method's own solver, optionally
/// wrapped in the top-k [`PrunedSolver`].
fn build_solver(config: EngineConfig) -> Box<dyn WdSolver> {
    if config.pruned {
        Box::new(PrunedSolver::new(config.method.new_solver()))
    } else {
        config.method.new_solver()
    }
}

impl<B: Bidder> AuctionEngine<B> {
    /// Builds an engine; model dimensions must match the bidder count.
    pub fn new(
        bidders: Vec<B>,
        clicks: ClickModel,
        purchases: PurchaseModel,
        num_keywords: usize,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(clicks.num_advertisers(), bidders.len());
        assert_eq!(purchases.num_advertisers(), bidders.len());
        let scratch = BatchScratch::new(clicks.num_slots());
        AuctionEngine {
            bidders,
            clicks,
            purchases,
            config,
            num_keywords,
            time: 0,
            solver: build_solver(config),
            solver_method: config.method,
            solver_pruned: config.pruned,
            targeting: Vec::new(),
            scratch,
        }
    }

    /// Installs per-bidder targeting matchers, parallel to `bidders`
    /// (compiled once at campaign registration — the engine never parses
    /// targeting text). Pass an empty vector (the default) or all-`None`
    /// for an untargeted market; both leave the hot path bit-identical to
    /// an engine that never heard of targeting.
    pub fn set_targeting(&mut self, targeting: Vec<Option<Arc<CompiledTargeting>>>) {
        assert!(
            targeting.is_empty() || targeting.len() == self.bidders.len(),
            "targeting must be empty or parallel to bidders"
        );
        self.targeting = targeting;
    }

    /// The auction clock (number of auctions run).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The auction clock (number of auctions run, across both single and
    /// batched paths). Alias of [`AuctionEngine::time`] with the
    /// conventional name.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Overrides the auction clock. Facade support: a service layer that
    /// owns several per-keyword engines (e.g. the `Marketplace`) keeps one
    /// global auction clock and aligns each engine to it before running a
    /// batch, so bidders observe market time rather than per-engine time.
    pub fn set_time(&mut self, time: u64) {
        self.time = time;
    }

    /// The persistent solver the batched path dispatches to, rebuilt lazily
    /// whenever `config.method` changes.
    pub fn solver_name(&mut self) -> &'static str {
        self.ensure_solver();
        self.solver.name()
    }

    fn ensure_solver(&mut self) {
        if self.solver_method != self.config.method || self.solver_pruned != self.config.pruned {
            self.solver = build_solver(self.config);
            self.solver_method = self.config.method;
            self.solver_pruned = self.config.pruned;
            // A different solver may break ties differently: the retained
            // assignment no longer counts as this solver's output.
            self.scratch.solved = false;
        }
    }

    /// Runs one complete auction for a query (a bare keyword index or
    /// anything else implementing [`EngineQuery`]).
    ///
    /// Runs the same persistent in-place pipeline as
    /// [`AuctionEngine::run_batch`] (no per-auction matrix or solver
    /// scratch allocation), then materialises an owned [`AuctionReport`]
    /// from the scratch buffers — the only allocation this path adds.
    pub fn run_auction<Q: EngineQuery, R: Rng>(&mut self, query: Q, rng: &mut R) -> AuctionReport {
        self.ensure_solver();
        let expected_revenue = self.hot_step(query.keyword(), query.attrs(), rng);
        let scratch = &self.scratch;
        AuctionReport {
            assignment: scratch.assignment.clone(),
            expected_revenue,
            clicked: scratch.clicked.clone(),
            purchased: scratch.purchased.clone(),
            charges: scratch.charges.clone(),
            realized_revenue: scratch.charges.iter().map(|(_, m)| *m).sum(),
        }
    }

    /// Runs one auction entirely inside the persistent scratch buffers.
    /// Returns the auction's expected revenue; all other outcomes are left
    /// in `self.scratch` for the caller to aggregate or materialise.
    fn hot_step<R: Rng>(&mut self, keyword: usize, attrs: &UserAttrs, rng: &mut R) -> f64 {
        self.time += 1;
        let ctx = QueryContext {
            time: self.time,
            keyword,
            num_keywords: self.num_keywords,
        };

        // Step 3: program evaluation into the reused bids buffer; the
        // previous auction's tables rotate into `prev_bids` for the
        // warm-start diff. A bidder whose targeting rejects the query's
        // attributes is excluded here — its program never runs and its
        // empty table makes it an EXCLUDED row for winner determination,
        // the same mechanism paused campaigns use. The warm-start row
        // diff then handles match/unmatch transitions like any other bid
        // change.
        let t_eval = Instant::now();
        std::mem::swap(&mut self.scratch.bids, &mut self.scratch.prev_bids);
        self.scratch.bids.clear();
        for (i, b) in self.bidders.iter_mut().enumerate() {
            let excluded = self
                .targeting
                .get(i)
                .and_then(|t| t.as_ref())
                .is_some_and(|t| !t.matches(attrs));
            self.scratch.bids.push(if excluded {
                BidsTable::empty()
            } else {
                b.on_query(&ctx)
            });
        }
        let t_fill = Instant::now();
        self.scratch.phases.program_eval_ns += (t_fill - t_eval).as_nanos() as u64;

        // Step 4a: revenue matrix. With warm starts enabled and a valid
        // previous fill, refresh only the rows whose bids changed (the
        // Section IV-B adjustment lists guarantee few do between
        // consecutive auctions); the row refresh plus the in-order base
        // re-sum is bit-identical to a full rebuild.
        let warm = self.config.warm_start;
        let mut dirty = 0usize;
        if warm && self.scratch.have_prev && self.scratch.prev_bids.len() == self.scratch.bids.len()
        {
            for (i, bids) in self.scratch.bids.iter().enumerate() {
                if *bids != self.scratch.prev_bids[i] {
                    revenue_matrix_refresh_row(
                        bids,
                        i,
                        &self.clicks,
                        &self.purchases,
                        &mut self.scratch.matrix,
                        &mut self.scratch.base,
                    );
                    dirty += 1;
                }
            }
            if dirty > 0 {
                self.scratch.base.resum();
            }
        } else {
            revenue_matrix_into(
                &self.scratch.bids,
                &self.clicks,
                &self.purchases,
                &mut self.scratch.matrix,
                &mut self.scratch.base,
            );
            dirty = self.scratch.bids.len().max(1);
            self.scratch.have_prev = true;
        }
        let t_solve = Instant::now();
        self.scratch.phases.matrix_fill_ns += (t_solve - t_fill).as_nanos() as u64;

        // Step 4b: winner determination. An unchanged matrix with a valid
        // previous assignment needs no solve: solvers are deterministic
        // functions of the matrix and draw no randomness, so the retained
        // assignment is exactly what a fresh solve would produce.
        if warm && dirty == 0 && self.scratch.solved {
            self.scratch.phases.warm_solves += 1;
        } else {
            self.solver
                .solve(&self.scratch.matrix, &mut self.scratch.assignment);
            self.scratch.solved = true;
            self.scratch.phases.solves += 1;
            self.scratch.phases.candidates += self
                .solver
                .last_candidates()
                .unwrap_or_else(|| self.scratch.matrix.num_advertisers())
                as u64;
        }
        let expected_revenue = self.scratch.base.total_base + self.scratch.assignment.total_weight;
        let t_action = Instant::now();
        self.scratch.phases.solve_ns += (t_action - t_solve).as_nanos() as u64;

        // Step 5: user action.
        let k = self.scratch.matrix.num_slots();
        self.scratch.clicked.clear();
        self.scratch.clicked.resize(k, false);
        self.scratch.purchased.clear();
        self.scratch.purchased.resize(k, false);
        for (j, adv) in self.scratch.assignment.slot_to_adv.iter().enumerate() {
            let Some(adv) = *adv else { continue };
            let slot = SlotId::from_index0(j);
            let clicked = rng.gen::<f64>() < self.clicks.p_click(adv, slot);
            self.scratch.clicked[j] = clicked;
            // Mirrors `run_auction`: zero-probability purchases draw nothing.
            let p_buy = self.purchases.p_purchase(adv, slot, clicked);
            self.scratch.purchased[j] = p_buy > 0.0 && rng.gen::<f64>() < p_buy;
        }

        // Reused advertiser→slot inverse map (pricing and notification).
        self.scratch.adv_to_slot.clear();
        self.scratch.adv_to_slot.resize(self.bidders.len(), None);
        for (j, adv) in self.scratch.assignment.slot_to_adv.iter().enumerate() {
            if let Some(i) = adv {
                self.scratch.adv_to_slot[*i] = Some(j);
            }
        }
        let t_pricing = Instant::now();
        self.scratch.phases.settlement_ns += (t_pricing - t_action).as_nanos() as u64;

        // Step 6: pricing into the reused charge/price buffers.
        compute_charges_into(
            self.config.pricing,
            &self.clicks,
            &self.scratch.bids,
            &self.scratch.matrix,
            &self.scratch.assignment,
            &self.scratch.adv_to_slot,
            &self.scratch.clicked,
            &self.scratch.purchased,
            &mut self.scratch.prices,
            &mut self.scratch.charges,
        );
        let t_notify = Instant::now();
        self.scratch.phases.pricing_ns += (t_notify - t_pricing).as_nanos() as u64;

        // Notify bidders.
        notify_bidders(
            &mut self.bidders,
            &ctx,
            &self.scratch.adv_to_slot,
            &self.scratch.clicked,
            &self.scratch.purchased,
            &self.scratch.charges,
            &mut self.scratch.price_by_adv,
        );
        self.scratch.phases.settlement_ns += t_notify.elapsed().as_nanos() as u64;

        expected_revenue
    }

    /// Runs one auction per query in `queries` through the persistent
    /// pipeline, aggregating outcomes. Performs no per-auction
    /// revenue-matrix (or solver-scratch) allocation after warm-up, and
    /// never clones a query: attributes are read through
    /// [`EngineQuery::attrs`] by reference.
    pub fn run_batch<Q: EngineQuery, R: Rng>(&mut self, queries: &[Q], rng: &mut R) -> BatchReport {
        self.ensure_solver();
        self.scratch.phases = PhaseStats::default();
        let mut report = BatchReport::default();
        for query in queries {
            let expected = self.hot_step(query.keyword(), query.attrs(), rng);
            report.auctions += 1;
            report.expected_revenue += expected;
            report.filled_slots += self.scratch.assignment.num_assigned() as u64;
            report.clicks += self.scratch.clicked.iter().filter(|c| **c).count() as u64;
            report.purchases += self.scratch.purchased.iter().filter(|p| **p).count() as u64;
            report.realized_revenue += self.scratch.charges.iter().map(|(_, m)| *m).sum();
        }
        report.phases = self.scratch.phases;
        report
    }

    /// Lazily runs one auction per query yielded by `queries` through the
    /// persistent pipeline, materialising an [`AuctionReport`] per auction.
    /// The pipeline state (matrix, solver scratch) is still reused; only
    /// the yielded reports allocate.
    pub fn stream<'a, R: Rng, I>(
        &'a mut self,
        queries: I,
        rng: &'a mut R,
    ) -> AuctionStream<'a, B, R, I::IntoIter>
    where
        I: IntoIterator,
        I::Item: EngineQuery,
    {
        self.ensure_solver();
        AuctionStream {
            engine: self,
            rng,
            queries: queries.into_iter(),
        }
    }
}

/// Iterator over batched auctions; see [`AuctionEngine::stream`].
pub struct AuctionStream<'a, B: Bidder, R: Rng, I: Iterator> {
    engine: &'a mut AuctionEngine<B>,
    rng: &'a mut R,
    queries: I,
}

impl<B: Bidder, R: Rng, I: Iterator> Iterator for AuctionStream<'_, B, R, I>
where
    I::Item: EngineQuery,
{
    type Item = AuctionReport;

    fn next(&mut self) -> Option<AuctionReport> {
        let query = self.queries.next()?;
        let expected_revenue = self
            .engine
            .hot_step(query.keyword(), query.attrs(), self.rng);
        let scratch = &self.engine.scratch;
        Some(AuctionReport {
            assignment: scratch.assignment.clone(),
            expected_revenue,
            clicked: scratch.clicked.clone(),
            purchased: scratch.purchased.clone(),
            charges: scratch.charges.clone(),
            realized_revenue: scratch.charges.iter().map(|(_, m)| *m).sum(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.queries.size_hint()
    }
}

/// Notifies every bidder of its slot, click, purchase, and charge.
/// `price_by_adv` is a reusable scratch scattered from `charges` so the
/// per-bidder lookup is O(1) rather than a scan of the charge list (which
/// under pay-your-bid pricing can cover every advertiser).
fn notify_bidders<B: Bidder>(
    bidders: &mut [B],
    ctx: &QueryContext,
    adv_to_slot: &[Option<usize>],
    clicked: &[bool],
    purchased: &[bool],
    charges: &[(usize, Money)],
    price_by_adv: &mut Vec<Money>,
) {
    price_by_adv.clear();
    price_by_adv.resize(bidders.len(), Money::ZERO);
    for &(adv, m) in charges {
        price_by_adv[adv] = m;
    }
    for (i, bidder) in bidders.iter_mut().enumerate() {
        let slot = adv_to_slot[i].map(SlotId::from_index0);
        let (c, p) = match adv_to_slot[i] {
            Some(j) => (clicked[j], purchased[j]),
            None => (false, false),
        };
        bidder.on_outcome(
            ctx,
            &BidderOutcome {
                slot,
                clicked: c,
                purchased: p,
                price: price_by_adv[i],
            },
        );
    }
}

/// Computes the per-advertiser charges for one auction into `out`
/// (cleared first). `adv_to_slot` is the assignment's inverse map and
/// `prices` a reusable scratch for the GSP slot prices.
#[allow(clippy::too_many_arguments)] // the auction facts plus two sinks
fn compute_charges_into(
    pricing: PricingScheme,
    clicks: &ClickModel,
    bids: &[BidsTable],
    matrix: &RevenueMatrix,
    assignment: &Assignment,
    adv_to_slot: &[Option<usize>],
    clicked: &[bool],
    purchased: &[bool],
    prices: &mut Vec<SlotPrice>,
    out: &mut Vec<(usize, Money)>,
) {
    out.clear();
    match pricing {
        PricingScheme::PayYourBid => {
            // Everyone pays their realised OR-bid (unplaced advertisers
            // can owe money on negated-slot formulas).
            out.extend(bids.iter().enumerate().filter_map(|(i, table)| {
                let view = match adv_to_slot[i] {
                    Some(j) => AdvertiserView {
                        slot: Some(SlotId::from_index0(j)),
                        clicked: clicked[j],
                        purchased: purchased[j],
                        heavy_pattern: None,
                    },
                    None => AdvertiserView::unplaced(),
                };
                let owed = table.payment(&view);
                owed.is_positive().then_some((i, owed))
            }));
        }
        PricingScheme::Gsp => {
            gsp_prices_into(
                matrix,
                assignment,
                adv_to_slot,
                &|adv, slot| clicks.p_click(adv, SlotId::from_index0(slot)),
                prices,
            );
            out.extend(
                prices
                    .iter()
                    .filter(|p| clicked[p.slot])
                    .map(|p| (p.winner, Money::from_f64_rounded(p.amount)))
                    .filter(|(_, m)| m.is_positive()),
            );
        }
        PricingScheme::Vickrey => out.extend(
            vcg_prices(matrix, assignment)
                .into_iter()
                .map(|p| (p.winner, Money::from_f64_rounded(p.amount)))
                .filter(|(_, m)| m.is_positive()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidder::TableBidder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssa_bidlang::{BidsTable, Formula};

    fn basic_engine(method: WdMethod, pricing: PricingScheme) -> AuctionEngine<TableBidder> {
        let bidders = vec![
            TableBidder::per_click(Money::from_cents(10)),
            TableBidder::per_click(Money::from_cents(20)),
            TableBidder::per_click(Money::from_cents(5)),
        ];
        let clicks = ClickModel::from_fn(3, 2, |i, j| 0.8 / ((i + 1) as f64) / ((j + 1) as f64));
        let purchases = PurchaseModel::never(3, 2);
        AuctionEngine::new(
            bidders,
            clicks,
            purchases,
            1,
            EngineConfig {
                method,
                pricing,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn all_methods_agree_on_expected_revenue() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut reference = None;
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(2),
        ] {
            let mut engine = basic_engine(method, PricingScheme::PayYourBid);
            let report = engine.run_auction(0, &mut rng);
            match reference {
                None => reference = Some(report.expected_revenue),
                Some(r) => assert!(
                    (report.expected_revenue - r).abs() < 1e-9,
                    "{method:?} disagrees: {} vs {r}",
                    report.expected_revenue
                ),
            }
        }
    }

    #[test]
    fn realized_gsp_revenue_only_on_clicks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut engine = basic_engine(WdMethod::Reduced, PricingScheme::Gsp);
        let mut clicked_total = 0usize;
        let mut charged_total = 0usize;
        for _ in 0..200 {
            let report = engine.run_auction(0, &mut rng);
            clicked_total += report.clicked.iter().filter(|c| **c).count();
            charged_total += report.charges.len();
            for (_, m) in &report.charges {
                assert!(m.is_positive());
            }
        }
        assert!(charged_total <= clicked_total);
        assert!(charged_total > 0, "some clicks must have been charged");
    }

    #[test]
    fn time_advances_and_bidders_notified() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = basic_engine(WdMethod::Hungarian, PricingScheme::Vickrey);
        assert_eq!(engine.time(), 0);
        assert_eq!(engine.now(), 0);
        engine.run_auction(0, &mut rng);
        engine.run_auction(0, &mut rng);
        assert_eq!(engine.time(), 2);
        assert_eq!(engine.now(), 2);
    }

    #[test]
    fn clock_advances_consistently_across_single_and_batched_runs() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut engine = basic_engine(WdMethod::Reduced, PricingScheme::Gsp);
        engine.run_auction(0, &mut rng);
        let report = engine.run_batch(&[0, 0, 0], &mut rng);
        assert_eq!(report.auctions, 3);
        assert_eq!(engine.now(), 4);
        let streamed: Vec<_> = engine.stream([0usize, 0], &mut rng).collect();
        assert_eq!(streamed.len(), 2);
        assert_eq!(engine.now(), 6);
    }

    #[test]
    fn batch_matches_looped_run_auction() {
        // Identical RNG streams ⇒ the aggregated batch must equal the sum
        // of per-call reports, for every method and pricing scheme.
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(2),
        ] {
            for pricing in [
                PricingScheme::PayYourBid,
                PricingScheme::Gsp,
                PricingScheme::Vickrey,
            ] {
                let queries = [0usize; 40];
                let mut loop_rng = StdRng::seed_from_u64(99);
                let mut loop_engine = basic_engine(method, pricing);
                let mut expected = BatchReport::default();
                for &kw in &queries {
                    let r = loop_engine.run_auction(kw, &mut loop_rng);
                    expected.auctions += 1;
                    expected.expected_revenue += r.expected_revenue;
                    expected.filled_slots += r.assignment.num_assigned() as u64;
                    expected.clicks += r.clicked.iter().filter(|c| **c).count() as u64;
                    expected.purchases += r.purchased.iter().filter(|p| **p).count() as u64;
                    expected.realized_revenue += r.realized_revenue;
                }

                let mut batch_rng = StdRng::seed_from_u64(99);
                let mut batch_engine = basic_engine(method, pricing);
                let got = batch_engine.run_batch(&queries, &mut batch_rng);
                assert!(
                    (got.expected_revenue - expected.expected_revenue).abs() < 1e-6,
                    "{method:?}/{pricing:?}"
                );
                assert_eq!(
                    BatchReport {
                        expected_revenue: expected.expected_revenue,
                        ..got
                    },
                    expected,
                    "{method:?}/{pricing:?}"
                );
            }
        }
    }

    #[test]
    fn stream_reports_match_run_auction_reports() {
        let queries = [0usize; 10];
        let mut loop_rng = StdRng::seed_from_u64(5);
        let mut loop_engine = basic_engine(WdMethod::Reduced, PricingScheme::Gsp);
        let expected: Vec<_> = queries
            .iter()
            .map(|&kw| loop_engine.run_auction(kw, &mut loop_rng))
            .collect();

        let mut stream_rng = StdRng::seed_from_u64(5);
        let mut stream_engine = basic_engine(WdMethod::Reduced, PricingScheme::Gsp);
        let got: Vec<_> = stream_engine.stream(queries, &mut stream_rng).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn method_change_rebuilds_the_batched_solver() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut engine = basic_engine(WdMethod::Reduced, PricingScheme::Gsp);
        assert_eq!(engine.solver_name(), "reduced");
        let a = engine.run_batch(&[0, 0], &mut rng).expected_revenue / 2.0;
        engine.config.method = WdMethod::Lp;
        assert_eq!(engine.solver_name(), "network-simplex");
        let b = engine.run_batch(&[0, 0], &mut rng).expected_revenue / 2.0;
        assert!((a - b).abs() < 1e-9, "objective must not depend on method");
    }

    #[test]
    fn wd_method_display_round_trips() {
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(7),
        ] {
            assert_eq!(method.to_string().parse::<WdMethod>(), Ok(method));
        }
        assert_eq!(
            "rhp".parse::<WdMethod>(),
            Err(ParseMethodError::MissingThreadCount)
        );
        assert_eq!("Hungarian".parse(), Ok(WdMethod::Hungarian));
        assert_eq!(
            "rhp:0".parse::<WdMethod>(),
            Err(ParseMethodError::ZeroThreads)
        );
        assert_eq!(
            "rhp:many".parse::<WdMethod>(),
            Err(ParseMethodError::InvalidThreadCount("rhp:many".into()))
        );
        assert_eq!(
            "simplex".parse::<WdMethod>(),
            Err(ParseMethodError::UnknownMethod("simplex".into()))
        );
    }

    #[test]
    fn parse_method_error_is_a_std_error() {
        let err: Box<dyn std::error::Error> =
            Box::new("nope".parse::<WdMethod>().expect_err("must fail"));
        assert!(err.to_string().contains("nope"));
        assert!(ParseMethodError::ZeroThreads
            .to_string()
            .contains("positive"));
    }

    #[test]
    fn pay_your_bid_charges_unplaced_negated_slot_bids() {
        // An advertiser bidding on "not displayed" owes money when losing.
        let brand = TableBidder::new(BidsTable::new(vec![(
            Formula::no_slot(1),
            Money::from_cents(3),
        )]));
        let strong = TableBidder::per_click(Money::from_cents(50));
        let clicks = ClickModel::from_fn(2, 1, |_, _| 1.0);
        let purchases = PurchaseModel::never(2, 1);
        let mut engine = AuctionEngine::new(
            vec![brand, strong],
            clicks,
            purchases,
            1,
            EngineConfig {
                method: WdMethod::Hungarian,
                pricing: PricingScheme::PayYourBid,
                ..EngineConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = engine.run_auction(0, &mut rng);
        // Advertiser 1 wins the slot (expected 50 > 3); advertiser 0 is
        // unplaced and owes its 3¢ "not displayed" bid.
        assert_eq!(report.assignment.slot_to_adv, vec![Some(1)]);
        assert!(report.charges.contains(&(0, Money::from_cents(3))));
        assert!(report.charges.contains(&(1, Money::from_cents(50))));
        assert!((report.expected_revenue - 53.0).abs() < 1e-9);
    }
}
