//! The auction engine: program evaluation → winner determination → user
//! action → pricing, per Section I-B's six-step flow.

use crate::bidder::{Bidder, BidderOutcome, QueryContext};
use crate::pricing::{gsp_prices, vcg_prices, PricingScheme};
use crate::prob::{ClickModel, PurchaseModel};
use crate::revenue::revenue_matrix;
use rand::Rng;
use ssa_bidlang::{AdvertiserView, Money, SlotId};
use ssa_matching::{max_weight_assignment, reduced_assignment, Assignment};
use ssa_simplex::network_simplex_assignment;

/// Which winner-determination algorithm the engine runs (the four methods
/// of Section V, minus the program-evaluation reductions which live in the
/// workload harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WdMethod {
    /// Method LP: the winner-determination linear program solved with the
    /// (network) simplex method.
    Lp,
    /// Method H: the Hungarian algorithm on the full bipartite graph.
    Hungarian,
    /// Method RH: the Section III-E reduced bipartite graph.
    Reduced,
    /// Method RH with the Section III-E parallel tree aggregation, using
    /// the given number of threads.
    ReducedParallel(usize),
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Winner-determination algorithm.
    pub method: WdMethod,
    /// Pricing rule.
    pub pricing: PricingScheme,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            method: WdMethod::Reduced,
            pricing: PricingScheme::Gsp,
        }
    }
}

/// Everything that happened in one auction.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionReport {
    /// The winning allocation (`slot_to_adv`).
    pub assignment: Assignment,
    /// Expected revenue of the allocation (including no-slot base values).
    pub expected_revenue: f64,
    /// Realised clicks per slot (parallel to `assignment.slot_to_adv`).
    pub clicked: Vec<bool>,
    /// Realised purchases per slot.
    pub purchased: Vec<bool>,
    /// Realised charge per advertiser (only winners are charged under GSP /
    /// VCG).
    pub charges: Vec<(usize, Money)>,
    /// Total realised revenue.
    pub realized_revenue: Money,
}

/// The auction engine over a population of bidders.
#[derive(Debug)]
pub struct AuctionEngine<B: Bidder> {
    /// The bidding programs.
    pub bidders: Vec<B>,
    /// Click probability model.
    pub clicks: ClickModel,
    /// Purchase probability model.
    pub purchases: PurchaseModel,
    /// Configuration.
    pub config: EngineConfig,
    /// Keyword universe size, surfaced to bidders.
    pub num_keywords: usize,
    time: u64,
}

impl<B: Bidder> AuctionEngine<B> {
    /// Builds an engine; model dimensions must match the bidder count.
    pub fn new(
        bidders: Vec<B>,
        clicks: ClickModel,
        purchases: PurchaseModel,
        num_keywords: usize,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(clicks.num_advertisers(), bidders.len());
        assert_eq!(purchases.num_advertisers(), bidders.len());
        AuctionEngine {
            bidders,
            clicks,
            purchases,
            config,
            num_keywords,
            time: 0,
        }
    }

    /// The auction clock (number of auctions run).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Runs one complete auction for a query on `keyword`.
    pub fn run_auction<R: Rng>(&mut self, keyword: usize, rng: &mut R) -> AuctionReport {
        self.time += 1;
        let ctx = QueryContext {
            time: self.time,
            keyword,
            num_keywords: self.num_keywords,
        };

        // Step 3: program evaluation.
        let bids: Vec<_> = self.bidders.iter_mut().map(|b| b.on_query(&ctx)).collect();

        // Step 4: winner determination.
        let (matrix, base) = revenue_matrix(&bids, &self.clicks, &self.purchases);
        let assignment = match self.config.method {
            WdMethod::Lp => network_simplex_assignment(&matrix).0,
            WdMethod::Hungarian => max_weight_assignment(&matrix),
            WdMethod::Reduced => reduced_assignment(&matrix).assignment,
            WdMethod::ReducedParallel(threads) => {
                ssa_matching::parallel::threaded_reduced_assignment(&matrix, threads).assignment
            }
        };
        let expected_revenue = base.total_base + assignment.total_weight;

        // Step 5: user action — sample clicks and purchases.
        let k = matrix.num_slots();
        let mut clicked = vec![false; k];
        let mut purchased = vec![false; k];
        for (j, adv) in assignment.slot_to_adv.iter().enumerate() {
            let Some(adv) = *adv else { continue };
            let slot = SlotId::from_index0(j);
            clicked[j] = rng.gen::<f64>() < self.clicks.p_click(adv, slot);
            purchased[j] = rng.gen::<f64>() < self.purchases.p_purchase(adv, slot, clicked[j]);
        }

        // Step 6: pricing.
        let charges = self.compute_charges(&bids, &matrix, &assignment, &clicked, &purchased);
        let realized_revenue = charges.iter().map(|(_, m)| *m).sum();

        // Notify bidders.
        let adv_to_slot = assignment.adv_to_slot(self.bidders.len());
        for (i, bidder) in self.bidders.iter_mut().enumerate() {
            let slot = adv_to_slot[i].map(SlotId::from_index0);
            let (c, p) = match adv_to_slot[i] {
                Some(j) => (clicked[j], purchased[j]),
                None => (false, false),
            };
            let price = charges
                .iter()
                .find(|(adv, _)| *adv == i)
                .map(|(_, m)| *m)
                .unwrap_or(Money::ZERO);
            bidder.on_outcome(
                &ctx,
                &BidderOutcome {
                    slot,
                    clicked: c,
                    purchased: p,
                    price,
                },
            );
        }

        AuctionReport {
            assignment,
            expected_revenue,
            clicked,
            purchased,
            charges,
            realized_revenue,
        }
    }

    fn compute_charges(
        &self,
        bids: &[ssa_bidlang::BidsTable],
        matrix: &ssa_matching::RevenueMatrix,
        assignment: &Assignment,
        clicked: &[bool],
        purchased: &[bool],
    ) -> Vec<(usize, Money)> {
        match self.config.pricing {
            PricingScheme::PayYourBid => {
                // Everyone pays their realised OR-bid (unplaced advertisers
                // can owe money on negated-slot formulas).
                let adv_to_slot = assignment.adv_to_slot(bids.len());
                bids.iter()
                    .enumerate()
                    .filter_map(|(i, table)| {
                        let view = match adv_to_slot[i] {
                            Some(j) => AdvertiserView {
                                slot: Some(SlotId::from_index0(j)),
                                clicked: clicked[j],
                                purchased: purchased[j],
                                heavy_pattern: None,
                            },
                            None => AdvertiserView::unplaced(),
                        };
                        let owed = table.payment(&view);
                        owed.is_positive().then_some((i, owed))
                    })
                    .collect()
            }
            PricingScheme::Gsp => {
                let clicks = &self.clicks;
                let prices = gsp_prices(matrix, assignment, &|adv, slot| {
                    clicks.p_click(adv, SlotId::from_index0(slot))
                });
                prices
                    .into_iter()
                    .filter(|p| clicked[p.slot])
                    .map(|p| (p.winner, Money::from_f64_rounded(p.amount)))
                    .filter(|(_, m)| m.is_positive())
                    .collect()
            }
            PricingScheme::Vickrey => vcg_prices(matrix, assignment)
                .into_iter()
                .map(|p| (p.winner, Money::from_f64_rounded(p.amount)))
                .filter(|(_, m)| m.is_positive())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidder::TableBidder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssa_bidlang::{BidsTable, Formula};

    fn basic_engine(method: WdMethod, pricing: PricingScheme) -> AuctionEngine<TableBidder> {
        let bidders = vec![
            TableBidder::per_click(Money::from_cents(10)),
            TableBidder::per_click(Money::from_cents(20)),
            TableBidder::per_click(Money::from_cents(5)),
        ];
        let clicks = ClickModel::from_fn(3, 2, |i, j| 0.8 / ((i + 1) as f64) / ((j + 1) as f64));
        let purchases = PurchaseModel::never(3, 2);
        AuctionEngine::new(
            bidders,
            clicks,
            purchases,
            1,
            EngineConfig { method, pricing },
        )
    }

    #[test]
    fn all_methods_agree_on_expected_revenue() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut reference = None;
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(2),
        ] {
            let mut engine = basic_engine(method, PricingScheme::PayYourBid);
            let report = engine.run_auction(0, &mut rng);
            match reference {
                None => reference = Some(report.expected_revenue),
                Some(r) => assert!(
                    (report.expected_revenue - r).abs() < 1e-9,
                    "{method:?} disagrees: {} vs {r}",
                    report.expected_revenue
                ),
            }
        }
    }

    #[test]
    fn realized_gsp_revenue_only_on_clicks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut engine = basic_engine(WdMethod::Reduced, PricingScheme::Gsp);
        let mut clicked_total = 0usize;
        let mut charged_total = 0usize;
        for _ in 0..200 {
            let report = engine.run_auction(0, &mut rng);
            clicked_total += report.clicked.iter().filter(|c| **c).count();
            charged_total += report.charges.len();
            for (_, m) in &report.charges {
                assert!(m.is_positive());
            }
        }
        assert!(charged_total <= clicked_total);
        assert!(charged_total > 0, "some clicks must have been charged");
    }

    #[test]
    fn time_advances_and_bidders_notified() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = basic_engine(WdMethod::Hungarian, PricingScheme::Vickrey);
        assert_eq!(engine.time(), 0);
        engine.run_auction(0, &mut rng);
        engine.run_auction(0, &mut rng);
        assert_eq!(engine.time(), 2);
    }

    #[test]
    fn pay_your_bid_charges_unplaced_negated_slot_bids() {
        // An advertiser bidding on "not displayed" owes money when losing.
        let brand = TableBidder::new(BidsTable::new(vec![(
            Formula::no_slot(1),
            Money::from_cents(3),
        )]));
        let strong = TableBidder::per_click(Money::from_cents(50));
        let clicks = ClickModel::from_fn(2, 1, |_, _| 1.0);
        let purchases = PurchaseModel::never(2, 1);
        let mut engine = AuctionEngine::new(
            vec![brand, strong],
            clicks,
            purchases,
            1,
            EngineConfig {
                method: WdMethod::Hungarian,
                pricing: PricingScheme::PayYourBid,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = engine.run_auction(0, &mut rng);
        // Advertiser 1 wins the slot (expected 50 > 3); advertiser 0 is
        // unplaced and owes its 3¢ "not displayed" bid.
        assert_eq!(report.assignment.slot_to_adv, vec![Some(1)]);
        assert!(report.charges.contains(&(0, Money::from_cents(3))));
        assert!(report.charges.contains(&(1, Money::from_cents(50))));
        assert!((report.expected_revenue - 53.0).abs() < 1e-9);
    }
}
