//! Outcome probability models (Section III-A).
//!
//! The paper's first-order approximation: "the probability that a given
//! advertiser gets a click depends only on the slot allocated to him, and
//! … the probability that he gets a purchase depends only on whether he got
//! a click and on the slot allocated to him."
//!
//! [`ClickModel`] stores the full `n × k` click-probability matrix — the
//! general (possibly non-separable, Figure 7) case. [`SeparableClickModel`]
//! is the restricted product form (Figure 8) used by current auction
//! platforms; it converts into a `ClickModel` and additionally supports the
//! sort-based allocation that is only correct under separability.

use ssa_bidlang::SlotId;

/// Per-advertiser, per-slot click probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct ClickModel {
    n: usize,
    k: usize,
    p: Vec<f64>, // row-major [advertiser * k + slot]
}

impl ClickModel {
    /// Builds a model from a function of `(advertiser, slot)` indexes.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn from_fn(n: usize, k: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut p = Vec::with_capacity(n * k);
        for i in 0..n {
            for j in 0..k {
                let v = f(i, j);
                assert!(
                    (0.0..=1.0).contains(&v),
                    "p_click({i},{j}) = {v} out of range"
                );
                p.push(v);
            }
        }
        ClickModel { n, k, p }
    }

    /// Builds a model from explicit rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let k = rows.first().map(|r| r.len()).unwrap_or(0);
        ClickModel::from_fn(n, k, |i, j| rows[i][j])
    }

    /// Number of advertisers.
    pub fn num_advertisers(&self) -> usize {
        self.n
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// P(click | advertiser `i` in slot `j`). An unplaced ad is never
    /// clicked.
    #[inline]
    pub fn p_click(&self, adv: usize, slot: SlotId) -> f64 {
        self.p[adv * self.k + slot.index0()]
    }

    /// Raw row access for hot loops.
    #[inline]
    pub fn row(&self, adv: usize) -> &[f64] {
        &self.p[adv * self.k..(adv + 1) * self.k]
    }

    /// Checks the separability condition: the matrix factors into
    /// advertiser-specific × slot-specific terms (within `tol`).
    ///
    /// Separability ⇔ every 2×2 minor has equal cross ratios:
    /// `p[i][j] · p[i'][j'] = p[i][j'] · p[i'][j]`.
    pub fn is_separable(&self, tol: f64) -> bool {
        if self.n < 2 || self.k < 2 {
            return true;
        }
        // Compare every row against row 0 (sufficient by transitivity).
        for i in 1..self.n {
            for j in 1..self.k {
                let lhs = self.p[0] * self.p[i * self.k + j];
                let rhs = self.p[j] * self.p[i * self.k];
                if (lhs - rhs).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The paper's Figure 7 non-separable example (Nike/Adidas × 2 slots).
    pub fn figure7() -> Self {
        ClickModel::from_rows(&[vec![0.7, 0.4], vec![0.6, 0.3]])
    }

    /// The paper's Figure 8 separable example.
    pub fn figure8() -> Self {
        ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]])
    }
}

/// A separable click model: `p(i, j) = advertiser_factor[i] ·
/// slot_factor[j]` (Section III-C).
#[derive(Debug, Clone, PartialEq)]
pub struct SeparableClickModel {
    /// Advertiser-specific factors.
    pub advertiser_factors: Vec<f64>,
    /// Slot-specific factors.
    pub slot_factors: Vec<f64>,
}

impl SeparableClickModel {
    /// Creates a model, checking that every product is a probability.
    pub fn new(advertiser_factors: Vec<f64>, slot_factors: Vec<f64>) -> Self {
        for (i, a) in advertiser_factors.iter().enumerate() {
            for (j, s) in slot_factors.iter().enumerate() {
                let p = a * s;
                assert!((0.0..=1.0).contains(&p), "p({i},{j}) = {p} out of range");
            }
        }
        SeparableClickModel {
            advertiser_factors,
            slot_factors,
        }
    }

    /// Expands into the general matrix form.
    pub fn to_click_model(&self) -> ClickModel {
        ClickModel::from_fn(
            self.advertiser_factors.len(),
            self.slot_factors.len(),
            |i, j| self.advertiser_factors[i] * self.slot_factors[j],
        )
    }

    /// The `O(n log k)` sort-based allocation that is correct **only under
    /// separability** (Section III-C): the advertiser with the j-th highest
    /// `advertiser_factor × per_click_value` gets the slot with the j-th
    /// highest slot factor.
    ///
    /// Returns `slot_to_adv` ordered by descending slot factor rank.
    pub fn sort_allocation(&self, per_click_value: &[f64]) -> Vec<Option<usize>> {
        assert_eq!(per_click_value.len(), self.advertiser_factors.len());
        let k = self.slot_factors.len();
        let mut advertisers: Vec<usize> = (0..self.advertiser_factors.len()).collect();
        advertisers.sort_by(|&a, &b| {
            let va = self.advertiser_factors[a] * per_click_value[a];
            let vb = self.advertiser_factors[b] * per_click_value[b];
            vb.total_cmp(&va).then(a.cmp(&b))
        });
        let mut slots: Vec<usize> = (0..k).collect();
        slots.sort_by(|&a, &b| self.slot_factors[b].total_cmp(&self.slot_factors[a]));
        let mut slot_to_adv = vec![None; k];
        for (rank, &slot) in slots.iter().enumerate() {
            if let Some(&adv) = advertisers.get(rank) {
                if self.advertiser_factors[adv] * per_click_value[adv] > 0.0 {
                    slot_to_adv[slot] = Some(adv);
                }
            }
        }
        slot_to_adv
    }
}

/// P(purchase | click?, slot) per advertiser (Section III-A: purchase
/// probability depends on whether the ad was clicked and on the slot).
#[derive(Debug, Clone, PartialEq)]
pub struct PurchaseModel {
    n: usize,
    k: usize,
    given_click: Vec<f64>,    // [advertiser * k + slot]
    given_no_click: Vec<f64>, // [advertiser * k + slot]
}

impl PurchaseModel {
    /// A model where purchases never happen (the pure click-auction
    /// setting).
    pub fn never(n: usize, k: usize) -> Self {
        PurchaseModel {
            n,
            k,
            given_click: vec![0.0; n * k],
            given_no_click: vec![0.0; n * k],
        }
    }

    /// Builds a model from `(advertiser, slot) → (p | click, p | no click)`.
    pub fn from_fn(n: usize, k: usize, mut f: impl FnMut(usize, usize) -> (f64, f64)) -> Self {
        let mut given_click = Vec::with_capacity(n * k);
        let mut given_no_click = Vec::with_capacity(n * k);
        for i in 0..n {
            for j in 0..k {
                let (pc, pn) = f(i, j);
                assert!((0.0..=1.0).contains(&pc), "p_purchase|click out of range");
                assert!((0.0..=1.0).contains(&pn), "p_purchase|¬click out of range");
                given_click.push(pc);
                given_no_click.push(pn);
            }
        }
        PurchaseModel {
            n,
            k,
            given_click,
            given_no_click,
        }
    }

    /// P(purchase | advertiser `i` in slot `j`, clicked?).
    #[inline]
    pub fn p_purchase(&self, adv: usize, slot: SlotId, clicked: bool) -> f64 {
        let idx = adv * self.k + slot.index0();
        if clicked {
            self.given_click[idx]
        } else {
            self.given_no_click[idx]
        }
    }

    /// Number of advertisers.
    pub fn num_advertisers(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_is_not_separable_figure8_is() {
        assert!(!ClickModel::figure7().is_separable(1e-9));
        assert!(ClickModel::figure8().is_separable(1e-9));
    }

    #[test]
    fn separable_expansion_matches_figure8() {
        // Figure 8 factors: advertisers 4 and 3, slots 0.2 and 0.1.
        let s = SeparableClickModel::new(vec![4.0, 3.0], vec![0.2, 0.1]);
        let expanded = s.to_click_model();
        let reference = ClickModel::figure8();
        for i in 0..2 {
            for j in 1..=2u16 {
                let slot = SlotId::new(j);
                assert!((expanded.p_click(i, slot) - reference.p_click(i, slot)).abs() < 1e-12);
            }
        }
        assert!(expanded.is_separable(1e-12));
    }

    #[test]
    fn sort_allocation_orders_by_factors() {
        let s = SeparableClickModel::new(vec![4.0, 3.0, 2.0], vec![0.1, 0.2]);
        // Slot 2 (index 1) has the higher factor → best advertiser there.
        let alloc = s.sort_allocation(&[1.0, 1.0, 1.0]);
        assert_eq!(alloc, vec![Some(1), Some(0)]);
        // Values can reorder advertisers.
        let alloc = s.sort_allocation(&[1.0, 10.0, 1.0]);
        assert_eq!(alloc, vec![Some(0), Some(1)]);
    }

    #[test]
    fn sort_allocation_skips_zero_value() {
        let s = SeparableClickModel::new(vec![1.0, 1.0], vec![0.5, 0.4]);
        let alloc = s.sort_allocation(&[0.0, 0.0]);
        assert_eq!(alloc, vec![None, None]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn click_probabilities_validated() {
        let _ = ClickModel::from_rows(&[vec![1.5]]);
    }

    #[test]
    fn purchase_model_lookup() {
        let m = PurchaseModel::from_fn(1, 2, |_, j| (0.2 / (j + 1) as f64, 0.01));
        assert_eq!(m.p_purchase(0, SlotId::new(1), true), 0.2);
        assert_eq!(m.p_purchase(0, SlotId::new(2), true), 0.1);
        assert_eq!(m.p_purchase(0, SlotId::new(1), false), 0.01);
        let never = PurchaseModel::never(1, 2);
        assert_eq!(never.p_purchase(0, SlotId::new(1), true), 0.0);
    }

    #[test]
    fn degenerate_models_are_separable() {
        assert!(ClickModel::from_rows(&[vec![0.5, 0.2]]).is_separable(1e-12));
        assert!(ClickModel::from_rows(&[vec![0.5], vec![0.1]]).is_separable(1e-12));
    }
}
