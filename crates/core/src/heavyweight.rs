//! The heavyweight/lightweight model of Section III-F.
//!
//! Advertisers are classified as *heavyweights* (famous) or *lightweights*.
//! Click probabilities may now depend on the advertiser's own slot **and**
//! on which slots hold heavyweights; bids may mention `HeavySlotj`
//! predicates. Winner determination enumerates all `2^k` choices of
//! heavyweight slots; for each choice the problem splits into two disjoint
//! maximum-weight matchings (heavies → heavy slots, lights → light slots),
//! solvable independently and in parallel.
//!
//! The representation is `O(k·2^k)` per advertiser and the solver runs in
//! `O(2^k (n log k + k⁵))` sequentially, or with the pattern loop spread
//! over threads — the thread count is independent of `n`, matching the
//! paper's claim.

use crate::prob::PurchaseModel;
use ssa_bidlang::{AdvertiserView, BidsTable, HeavyPattern, SlotId};
use ssa_matching::{max_weight_assignment, RevenueMatrix};

/// Click probabilities that depend on the heavyweight pattern:
/// `p(click | advertiser, slot, pattern)`.
#[derive(Debug, Clone)]
pub struct PatternClickModel {
    n: usize,
    k: usize,
    // [adv * k * 2^k + slot * 2^k + pattern]
    p: Vec<f64>,
}

impl PatternClickModel {
    /// Builds the full `n × k × 2^k` table from a function.
    ///
    /// # Panics
    ///
    /// Panics if `k > 16` (the table would not fit in memory) or any value
    /// is not a probability.
    pub fn from_fn(
        n: usize,
        k: usize,
        mut f: impl FnMut(usize, usize, HeavyPattern) -> f64,
    ) -> Self {
        assert!(k <= 16, "pattern click models are limited to k ≤ 16");
        let patterns = 1usize << k;
        let mut p = Vec::with_capacity(n * k * patterns);
        for adv in 0..n {
            for slot in 0..k {
                for pat in 0..patterns {
                    let v = f(adv, slot, HeavyPattern(pat as u32));
                    assert!((0.0..=1.0).contains(&v), "p out of range: {v}");
                    p.push(v);
                }
            }
        }
        PatternClickModel { n, k, p }
    }

    /// Number of advertisers.
    pub fn num_advertisers(&self) -> usize {
        self.n
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// P(click | `adv` in `slot`, page pattern `pattern`).
    #[inline]
    pub fn p_click(&self, adv: usize, slot: SlotId, pattern: HeavyPattern) -> f64 {
        let patterns = 1usize << self.k;
        self.p[adv * self.k * patterns + slot.index0() * patterns + pattern.0 as usize]
    }
}

/// A Section III-F winner-determination instance.
#[derive(Debug, Clone)]
pub struct HeavyweightInstance {
    /// `is_heavy[i]`: is advertiser `i` a heavyweight? (The paper suggests
    /// classifying by historical clicks.)
    pub is_heavy: Vec<bool>,
    /// Pattern-dependent click model.
    pub clicks: PatternClickModel,
    /// Purchase model (conditional on click and slot, pattern-independent).
    pub purchases: PurchaseModel,
    /// Bids; may mention `HeavySlotj`, `Slotj`, `Click`, `Purchase`.
    pub bids: Vec<BidsTable>,
}

/// An optimal heavyweight-aware allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyweightSolution {
    /// Which slots ended up heavyweight.
    pub pattern: HeavyPattern,
    /// The allocation.
    pub slot_to_adv: Vec<Option<usize>>,
    /// Its expected revenue.
    pub expected_revenue: f64,
}

/// Expected revenue of `adv` in `slot` under a fixed page pattern.
fn pattern_expected_revenue(
    instance: &HeavyweightInstance,
    adv: usize,
    slot: SlotId,
    pattern: HeavyPattern,
) -> f64 {
    let p_click = instance.clicks.p_click(adv, slot, pattern);
    let mut total = 0.0;
    for clicked in [false, true] {
        let p_c = if clicked { p_click } else { 1.0 - p_click };
        if p_c == 0.0 {
            continue;
        }
        let p_purchase = instance.purchases.p_purchase(adv, slot, clicked);
        for purchased in [false, true] {
            let p = p_c
                * if purchased {
                    p_purchase
                } else {
                    1.0 - p_purchase
                };
            if p == 0.0 {
                continue;
            }
            let view = AdvertiserView {
                slot: Some(slot),
                clicked,
                purchased,
                heavy_pattern: Some(pattern),
            };
            total += p * instance.bids[adv].payment(&view).as_f64();
        }
    }
    total
}

/// Revenue from an unplaced advertiser under a pattern (heavy-slot formulas
/// still pay).
fn pattern_no_slot_revenue(
    instance: &HeavyweightInstance,
    adv: usize,
    pattern: HeavyPattern,
) -> f64 {
    let view = AdvertiserView {
        slot: None,
        clicked: false,
        purchased: false,
        heavy_pattern: Some(pattern),
    };
    instance.bids[adv].payment(&view).as_f64()
}

/// Shift large enough to force heavy slots to be filled whenever feasible,
/// without distorting the comparison between fillings.
const FILL_BONUS: f64 = 1e9;

/// Solves one pattern; returns `None` when the pattern is infeasible (some
/// designated heavy slot cannot be filled by a heavyweight). Infeasible and
/// unfilled patterns are safely skipped: the allocation they would have
/// produced occurs in the iteration of its *actual* induced pattern.
fn solve_pattern(
    instance: &HeavyweightInstance,
    pattern: HeavyPattern,
) -> Option<HeavyweightSolution> {
    let n = instance.is_heavy.len();
    let k = instance.clicks.num_slots();
    let heavies: Vec<usize> = (0..n).filter(|&i| instance.is_heavy[i]).collect();
    let lights: Vec<usize> = (0..n).filter(|&i| !instance.is_heavy[i]).collect();
    let heavy_slots: Vec<usize> = (0..k)
        .filter(|&j| pattern.is_heavy(SlotId::from_index0(j)))
        .collect();
    let light_slots: Vec<usize> = (0..k)
        .filter(|&j| !pattern.is_heavy(SlotId::from_index0(j)))
        .collect();
    if heavies.len() < heavy_slots.len() {
        return None; // not enough heavyweights to realise the pattern
    }

    let base: Vec<f64> = (0..n)
        .map(|i| pattern_no_slot_revenue(instance, i, pattern))
        .collect();
    let total_base: f64 = base.iter().sum();

    // Heavy side: matching must *fill* every heavy slot (otherwise the slot
    // would not actually be heavyweight); the FILL_BONUS makes maximum
    // cardinality dominate.
    let mut heavy_total = 0.0;
    let mut slot_to_adv = vec![None; k];
    if !heavy_slots.is_empty() {
        let hm = RevenueMatrix::from_fn(heavies.len(), heavy_slots.len(), |hi, hj| {
            let adv = heavies[hi];
            let slot = SlotId::from_index0(heavy_slots[hj]);
            pattern_expected_revenue(instance, adv, slot, pattern) - base[adv] + FILL_BONUS
        });
        let ha = max_weight_assignment(&hm);
        if ha.num_assigned() < heavy_slots.len() {
            return None; // could not fill all heavy slots
        }
        for (hj, adv_local) in ha.slot_to_adv.iter().enumerate() {
            let adv = heavies[adv_local.expect("all heavy slots filled")];
            slot_to_adv[heavy_slots[hj]] = Some(adv);
            let slot = SlotId::from_index0(heavy_slots[hj]);
            heavy_total += pattern_expected_revenue(instance, adv, slot, pattern) - base[adv];
        }
    }

    // Light side: ordinary partial matching (empty light slots are fine).
    let mut light_total = 0.0;
    if !light_slots.is_empty() && !lights.is_empty() {
        let lm = RevenueMatrix::from_fn(lights.len(), light_slots.len(), |li, lj| {
            let adv = lights[li];
            let slot = SlotId::from_index0(light_slots[lj]);
            pattern_expected_revenue(instance, adv, slot, pattern) - base[adv]
        });
        let la = max_weight_assignment(&lm);
        for (lj, adv_local) in la.slot_to_adv.iter().enumerate() {
            if let Some(local) = adv_local {
                slot_to_adv[light_slots[lj]] = Some(lights[*local]);
            }
        }
        light_total = la.total_weight;
    }

    Some(HeavyweightSolution {
        pattern,
        slot_to_adv,
        expected_revenue: total_base + heavy_total + light_total,
    })
}

/// Exact winner determination for the heavyweight model: enumerate all
/// `2^k` patterns (optionally across `threads` threads) and keep the best.
pub fn solve_heavyweight(instance: &HeavyweightInstance, threads: usize) -> HeavyweightSolution {
    let k = instance.clicks.num_slots();
    assert_eq!(instance.is_heavy.len(), instance.bids.len());
    assert_eq!(instance.clicks.num_advertisers(), instance.bids.len());
    let patterns: Vec<HeavyPattern> = HeavyPattern::all(k as u16).collect();
    let best = if threads <= 1 {
        patterns
            .iter()
            .filter_map(|&p| solve_pattern(instance, p))
            .max_by(|a, b| a.expected_revenue.total_cmp(&b.expected_revenue))
    } else {
        let chunk = patterns.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = patterns
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .filter_map(|&p| solve_pattern(instance, p))
                            .max_by(|a, b| a.expected_revenue.total_cmp(&b.expected_revenue))
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("pattern worker panicked"))
                .max_by(|a, b| a.expected_revenue.total_cmp(&b.expected_revenue))
        })
    };
    best.expect("the empty pattern is always feasible")
}

/// Brute-force reference: enumerate every assignment, derive its induced
/// pattern, and score it. Exponential; for validation only (`n ≤ 6`,
/// `k ≤ 3`).
pub fn brute_force_heavyweight(instance: &HeavyweightInstance) -> HeavyweightSolution {
    let n = instance.is_heavy.len();
    let k = instance.clicks.num_slots();
    assert!(n <= 6 && k <= 3, "brute force limited to tiny instances");

    let mut best: Option<HeavyweightSolution> = None;
    let mut slots: Vec<Option<usize>> = vec![None; k];
    let mut used = vec![false; n];

    fn score(instance: &HeavyweightInstance, slots: &[Option<usize>]) -> (HeavyPattern, f64) {
        let pattern = HeavyPattern::from_slots(slots.iter().enumerate().filter_map(|(j, a)| {
            a.and_then(|adv| instance.is_heavy[adv].then(|| SlotId::from_index0(j)))
        }));
        let n = instance.is_heavy.len();
        let placed: Vec<bool> = {
            let mut p = vec![false; n];
            for a in slots.iter().flatten() {
                p[*a] = true;
            }
            p
        };
        let mut total = 0.0;
        for (j, a) in slots.iter().enumerate() {
            if let Some(adv) = a {
                total += pattern_expected_revenue(instance, *adv, SlotId::from_index0(j), pattern);
            }
        }
        #[allow(clippy::needless_range_loop)] // indexes `placed` and the model
        for adv in 0..n {
            if !placed[adv] {
                total += pattern_no_slot_revenue(instance, adv, pattern);
            }
        }
        (pattern, total)
    }

    fn recurse(
        instance: &HeavyweightInstance,
        j: usize,
        slots: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
        best: &mut Option<HeavyweightSolution>,
    ) {
        let k = slots.len();
        if j == k {
            let (pattern, revenue) = score(instance, slots);
            if best
                .as_ref()
                .map(|b| revenue > b.expected_revenue)
                .unwrap_or(true)
            {
                *best = Some(HeavyweightSolution {
                    pattern,
                    slot_to_adv: slots.clone(),
                    expected_revenue: revenue,
                });
            }
            return;
        }
        slots[j] = None;
        recurse(instance, j + 1, slots, used, best);
        for adv in 0..instance.is_heavy.len() {
            if !used[adv] {
                used[adv] = true;
                slots[j] = Some(adv);
                recurse(instance, j + 1, slots, used, best);
                slots[j] = None;
                used[adv] = false;
            }
        }
    }

    recurse(instance, 0, &mut slots, &mut used, &mut best);
    best.expect("at least the empty assignment exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_bidlang::{Formula, Money};

    /// Builds a small instance where a lightweight pays extra to avoid a
    /// heavyweight directly above (the paper's motivating example).
    fn small_instance() -> HeavyweightInstance {
        let n = 4;
        let k = 2;
        let is_heavy = vec![true, false, false, true];
        // Clicks drop for lightweights when slot 1 holds a heavyweight.
        let clicks = PatternClickModel::from_fn(n, k, |adv, slot, pattern| {
            let base = [0.6, 0.5, 0.4, 0.55][adv] / (slot + 1) as f64;
            if !is_heavy_static(adv) && pattern.is_heavy(SlotId::new(1)) && slot == 1 {
                base * 0.5 // shadowed by the famous competitor above
            } else {
                base
            }
        });
        fn is_heavy_static(adv: usize) -> bool {
            matches!(adv, 0 | 3)
        }
        let purchases = PurchaseModel::never(n, k);
        let bids = vec![
            BidsTable::single_feature(Money::from_cents(30)),
            // Bids 3¢ extra for slot 2 when slot 1 is NOT heavyweight.
            BidsTable::new(vec![
                (Formula::click(), Money::from_cents(25)),
                (
                    Formula::slot(SlotId::new(2)) & !Formula::heavy_in_slot(SlotId::new(1)),
                    Money::from_cents(3),
                ),
            ]),
            BidsTable::single_feature(Money::from_cents(20)),
            BidsTable::single_feature(Money::from_cents(28)),
        ];
        HeavyweightInstance {
            is_heavy,
            clicks,
            purchases,
            bids,
        }
    }

    #[test]
    fn matches_brute_force() {
        let instance = small_instance();
        let fast = solve_heavyweight(&instance, 1);
        let slow = brute_force_heavyweight(&instance);
        assert!(
            (fast.expected_revenue - slow.expected_revenue).abs() < 1e-9,
            "fast {} vs brute {}",
            fast.expected_revenue,
            slow.expected_revenue
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let instance = small_instance();
        let seq = solve_heavyweight(&instance, 1);
        let par = solve_heavyweight(&instance, 4);
        assert_eq!(seq.expected_revenue, par.expected_revenue);
        assert_eq!(seq.pattern, par.pattern);
    }

    #[test]
    fn induced_pattern_is_consistent() {
        let instance = small_instance();
        let sol = solve_heavyweight(&instance, 1);
        // Every slot the solution marks heavy holds a heavyweight, and
        // vice versa.
        for j in 0..2 {
            let slot = SlotId::from_index0(j);
            let holds_heavy = sol.slot_to_adv[j]
                .map(|a| instance.is_heavy[a])
                .unwrap_or(false);
            assert_eq!(sol.pattern.is_heavy(slot), holds_heavy);
        }
    }

    #[test]
    fn all_lightweights_still_solvable() {
        let n = 3;
        let k = 2;
        let clicks =
            PatternClickModel::from_fn(n, k, |adv, slot, _| 0.5 / ((adv + 1) * (slot + 1)) as f64);
        let instance = HeavyweightInstance {
            is_heavy: vec![false; n],
            clicks,
            purchases: PurchaseModel::never(n, k),
            bids: vec![BidsTable::single_feature(Money::from_cents(10)); n],
        };
        let sol = solve_heavyweight(&instance, 1);
        assert_eq!(sol.pattern, HeavyPattern::EMPTY);
        let slow = brute_force_heavyweight(&instance);
        assert!((sol.expected_revenue - slow.expected_revenue).abs() < 1e-9);
    }

    #[test]
    fn pattern_click_model_lookup() {
        let m = PatternClickModel::from_fn(1, 2, |_, slot, pat| {
            0.1 * (slot + 1) as f64
                + if pat.is_heavy(SlotId::new(1)) {
                    0.05
                } else {
                    0.0
                }
        });
        assert_eq!(m.p_click(0, SlotId::new(1), HeavyPattern::EMPTY), 0.1);
        assert_eq!(
            m.p_click(
                0,
                SlotId::new(1),
                HeavyPattern::from_slots([SlotId::new(1)])
            ),
            0.15000000000000002
        );
    }
}
