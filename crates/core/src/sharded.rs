//! Sharded, multi-threaded marketplace serving.
//!
//! [`ShardedMarketplace`] scales the single-threaded
//! [`Marketplace`] facade out over worker
//! threads: the keyword universe is partitioned across `N` shards by a
//! stable hash ([`ShardedMarketplace::shard_of`]), each shard owns its
//! keywords' campaigns, persistent engines, and solver scratch, and
//! [`ShardedMarketplace::serve_batch`] fans a mixed-keyword query stream
//! out to the shards via [`std::thread::scope`] workers, merging the
//! per-shard [`BatchReport`]s back into one
//! [`MarketBatchReport`].
//!
//! Control-plane calls ([`ShardedMarketplace::register_advertiser`],
//! [`ShardedMarketplace::add_campaign`], [`ShardedMarketplace::update_bid`],
//! [`ShardedMarketplace::pause_campaign`],
//! [`ShardedMarketplace::set_roi_target`], …) route to the owning shard
//! through the same hash, so the Section IV-B incremental `O(log n)`
//! adjustment-list path is preserved per shard — an update on one keyword
//! never touches, locks, or rebuilds any other shard.
//!
//! # The equivalence guarantee
//!
//! Sharding is an *execution* strategy, not a semantic one: every shard
//! runs in [`MarketplaceBuilder::keyword_local_rng`] mode, where keyword
//! `k`'s user-action RNG stream is seeded purely from `(seed, k)`. Since
//! per-keyword state (campaigns, engine, logical bid index, RNG) is fully
//! keyword-local, the auctions served on a keyword depend only on the
//! sub-sequence of queries on that keyword and their global clock values —
//! not on which shard runs them or what other shards do concurrently.
//! Consequently a `ShardedMarketplace` produces **bit-identical** winners,
//! clicks, and charges for every shard count, all equal to an unsharded
//! `Marketplace` built with the same configuration and
//! `keyword_local_rng(true)` (the property-based tests in
//! `tests/sharding.rs` prove this for shard counts 1, 2, 4, and 7).
//!
//! One caveat: the guarantee covers campaigns whose bidding state is
//! keyword-local (per-click campaigns, fixed tables, and independent
//! programs). A custom program *shared across keywords* (e.g. the Section
//! II-C ROI strategy coupling an advertiser's keywords through one spend
//! rate) observes cross-shard event ordering and is therefore not
//! shard-invariant; keep such workloads on the single-threaded facade.
//!
//! # Quickstart
//!
//! ```
//! use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
//! use ssa_core::sharded::ShardedMarketplace;
//! use ssa_bidlang::Money;
//!
//! let mut market = Marketplace::builder()
//!     .slots(2)
//!     .keywords(8)
//!     .seed(7)
//!     .default_click_probs(vec![0.6, 0.3])
//!     .build_sharded(4)
//!     .expect("valid configuration");
//! let shoes = market.register_advertiser("shoes.example");
//! let c = market
//!     .add_campaign(shoes, 3, CampaignSpec::per_click(Money::from_cents(20)))
//!     .expect("campaign accepted");
//!
//! let requests: Vec<QueryRequest> = (0..64).map(|i| QueryRequest::new(i % 8)).collect();
//! let report = market.serve_batch(&requests).expect("keywords in range");
//! assert_eq!(report.total.auctions, 64);
//! market.update_bid(c, Money::from_cents(5)).expect("routed to shard");
//! ```

use crate::engine::{BatchReport, WdMethod};
use crate::journal::{MutationJournal, MutationRecord};
use crate::marketplace::{
    splitmix64, AdvertiserHandle, AuctionResponse, CampaignId, CampaignSpec, MarketBatchReport,
    MarketError, Marketplace, MarketplaceBuilder, QueryRequest,
};
use crate::pricing::PricingScheme;
use crate::state::{MarketConfigState, MarketState};
use ssa_bidlang::Money;

/// Error returned when parsing a shard count (the `--shards` CLI flag)
/// fails. The shape mirrors [`crate::ParseMethodError`]: a typed
/// [`std::error::Error`] per rejection reason instead of a panic or a
/// silent default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseShardsError {
    /// The value was not an unsigned integer.
    Invalid(String),
    /// `0` — a sharded marketplace needs at least one shard.
    Zero,
}

impl std::fmt::Display for ParseShardsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseShardsError::Invalid(raw) => write!(f, "invalid shard count {raw:?}"),
            ParseShardsError::Zero => f.write_str("shard count must be positive"),
        }
    }
}

impl std::error::Error for ParseShardsError {}

/// Parses a shard count: an unsigned integer ≥ 1, with typed errors.
pub fn parse_shards(s: &str) -> Result<usize, ParseShardsError> {
    let n: usize = s
        .trim()
        .parse()
        .map_err(|_| ParseShardsError::Invalid(s.to_string()))?;
    if n == 0 {
        return Err(ParseShardsError::Zero);
    }
    Ok(n)
}

/// The shard that owns `keyword` in a marketplace partitioned across
/// `num_shards` shards: a stable SplitMix64 hash of the keyword index
/// modulo the shard count. Stable across runs, processes, and machines, so
/// external routers (e.g. a network front-end's admission control) can
/// compute placement without holding the marketplace itself.
pub fn shard_of_keyword(keyword: usize, num_shards: usize) -> usize {
    (splitmix64(keyword as u64) % num_shards.max(1) as u64) as usize
}

/// One maximal same-keyword run of a request stream, tagged with its
/// position so per-shard results can be merged back in stream order. The
/// run is identified by its range in the request slice so workers can
/// borrow the typed requests (keyword *and* user attributes) zero-copy.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    /// Index of the chunk in the full stream (merge key).
    idx: usize,
    keyword: usize,
    /// Offset of the run's first request in the full stream.
    start: usize,
    len: usize,
    /// Global clock value before the chunk's first query.
    start_time: u64,
}

/// A sharded, multi-threaded sponsored-search marketplace: the
/// [`Marketplace`] service API with
/// keywords partitioned across shard-owned worker state. See the
/// [module docs](crate::sharded) for the partitioning scheme and the
/// equivalence guarantee.
#[derive(Debug)]
pub struct ShardedMarketplace {
    shards: Vec<Marketplace>,
    num_keywords: usize,
    clock: u64,
    /// Durability hook: receives every applied mutation and served query
    /// (see [`crate::journal`]). `None` — the default — costs the hot
    /// serve path a single branch.
    journal: Option<Box<dyn MutationJournal>>,
}

impl ShardedMarketplace {
    /// Builds a sharded marketplace from a [`MarketplaceBuilder`]
    /// configuration; equivalent to
    /// [`MarketplaceBuilder::build_sharded`].
    ///
    /// Every shard is a full [`Marketplace`] over the whole keyword
    /// universe running in keyword-local RNG mode; only the keywords a
    /// shard owns ever receive campaigns or queries.
    pub fn new(builder: MarketplaceBuilder, num_shards: usize) -> Result<Self, MarketError> {
        if num_shards == 0 {
            return Err(MarketError::NoShards);
        }
        let shards: Vec<Marketplace> = (0..num_shards)
            .map(|_| builder.clone().keyword_local_rng(true).build())
            .collect::<Result<_, _>>()?;
        let num_keywords = shards[0].num_keywords();
        Ok(ShardedMarketplace {
            shards,
            num_keywords,
            clock: 0,
            journal: None,
        })
    }

    // -- durability hook ----------------------------------------------------

    /// Attaches a mutation journal: from now on every successfully applied
    /// control-plane mutation and every served query is reported to it
    /// (see [`crate::journal`]). While a journal is attached,
    /// [`ShardedMarketplace::add_campaign`] rejects non-per-click specs
    /// with [`MarketError::NotDurable`] — they cannot be serialized, so
    /// accepting one would silently break recovery.
    pub fn set_journal(&mut self, journal: Box<dyn MutationJournal>) {
        self.journal = Some(journal);
    }

    /// Detaches and returns the journal, if one is attached. Used by the
    /// serving layer to carry the journal across a marketplace rebuild
    /// (`Configure`).
    pub fn take_journal(&mut self) -> Option<Box<dyn MutationJournal>> {
        self.journal.take()
    }

    /// Whether a mutation journal is attached.
    pub fn journal_attached(&self) -> bool {
        self.journal.is_some()
    }

    fn record(&mut self, record: &MutationRecord) {
        if let Some(journal) = self.journal.as_mut() {
            journal.record(record);
        }
    }

    // -- durable state capture ----------------------------------------------

    /// Captures the marketplace's complete durable state: configuration,
    /// advertisers, per-click campaign book, clock, and the exact position
    /// of every keyword's RNG stream. [`MarketError::NotDurable`] if any
    /// campaign runs a custom program or fixed table.
    ///
    /// [`ShardedMarketplace::from_state`] rebuilds a marketplace from the
    /// capture that serves **bit-identical** auctions from the next query
    /// on (engines and solver scratch are execution state and rebuild
    /// lazily with identical outcomes).
    pub fn capture_state(&self) -> Result<MarketState, MarketError> {
        let shard0 = &self.shards[0];
        let config = MarketConfigState {
            slots: shard0.num_slots(),
            keywords: self.num_keywords,
            seed: shard0.seed(),
            method: shard0.method(),
            pricing: shard0.pricing(),
            shards: self.shards.len(),
            pruned: shard0.pruned(),
            warm_start: shard0.warm_start(),
            default_click_probs: shard0.default_click_probs().cloned(),
            default_purchase_probs: shard0.default_purchase_probs().cloned(),
        };
        let advertisers = (0..shard0.num_advertisers())
            .map(|i| {
                shard0
                    .advertiser_name(AdvertiserHandle::from_index(i))
                    .expect("advertiser indexes are dense")
                    .to_string()
            })
            .collect();
        let mut campaigns = Vec::with_capacity(self.num_campaigns_total());
        let mut rng_states = Vec::with_capacity(self.num_keywords);
        for kw in 0..self.num_keywords {
            let owner = self.owner(kw);
            owner.capture_campaigns_into(kw, &mut campaigns)?;
            rng_states.push(owner.rng_state(kw));
        }
        Ok(MarketState {
            config,
            advertisers,
            campaigns,
            clock: self.clock,
            rng_states,
        })
    }

    /// Rebuilds a marketplace from a [`ShardedMarketplace::capture_state`]
    /// capture; see there for the bit-identity guarantee. The restored
    /// marketplace has no journal attached.
    pub fn from_state(state: &MarketState) -> Result<Self, MarketError> {
        let config = &state.config;
        let mut builder = Marketplace::builder()
            .slots(config.slots)
            .keywords(config.keywords)
            .seed(config.seed)
            .method(config.method)
            .pricing(config.pricing)
            .pruned(config.pruned)
            .warm_start(config.warm_start);
        if let Some(probs) = &config.default_click_probs {
            builder = builder.default_click_probs(probs.clone());
        }
        if let Some(probs) = &config.default_purchase_probs {
            builder = builder.default_purchase_probs(probs.clone());
        }
        let mut market = builder.build_sharded(config.shards)?;
        for name in &state.advertisers {
            market.register_advertiser(name.clone());
        }
        for campaign in &state.campaigns {
            let mut spec = CampaignSpec::per_click(Money::from_cents(campaign.bid_cents))
                .click_value(Money::from_cents(campaign.click_value_cents))
                .click_probs(campaign.click_probs.clone())
                .purchase_probs(campaign.purchase_probs.clone());
            if let Some(target) = campaign.roi_target {
                spec = spec.roi_target(target);
            }
            if let Some(source) = &campaign.targeting {
                spec = spec.targeting(source.clone());
            }
            let id = market.add_campaign(
                AdvertiserHandle::from_index(campaign.advertiser),
                campaign.keyword,
                spec,
            )?;
            if campaign.paused {
                market.pause_campaign(id)?;
            }
        }
        market.clock = state.clock;
        for (kw, rng_state) in state.rng_states.iter().enumerate() {
            if kw >= market.num_keywords {
                break;
            }
            let shard = market.shard_of(kw);
            market.shards[shard].set_rng_state(kw, *rng_state);
        }
        Ok(market)
    }

    /// Number of shards the keyword universe is partitioned across.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `keyword`: a stable SplitMix64 hash of the keyword
    /// index modulo the shard count. Stable across runs and processes, so
    /// external routers can precompute placement.
    pub fn shard_of(&self, keyword: usize) -> usize {
        shard_of_keyword(keyword, self.shards.len())
    }

    fn check_keyword(&self, keyword: usize) -> Result<usize, MarketError> {
        if keyword < self.num_keywords {
            Ok(keyword)
        } else {
            Err(MarketError::UnknownKeyword {
                keyword,
                num_keywords: self.num_keywords,
            })
        }
    }

    fn owner_mut(&mut self, keyword: usize) -> &mut Marketplace {
        let shard = self.shard_of(keyword);
        &mut self.shards[shard]
    }

    fn owner(&self, keyword: usize) -> &Marketplace {
        &self.shards[self.shard_of(keyword)]
    }

    // -- mirrored read-only configuration ----------------------------------

    /// Number of ad slots per results page.
    pub fn num_slots(&self) -> usize {
        self.shards[0].num_slots()
    }

    /// Size of the keyword universe.
    pub fn num_keywords(&self) -> usize {
        self.num_keywords
    }

    /// The winner-determination method every keyword engine runs.
    pub fn method(&self) -> WdMethod {
        self.shards[0].method()
    }

    /// The pricing rule in force.
    pub fn pricing(&self) -> PricingScheme {
        self.shards[0].pricing()
    }

    /// Whether winner determination runs through the top-k
    /// [`ssa_matching::PrunedSolver`].
    pub fn pruned(&self) -> bool {
        self.shards[0].pruned()
    }

    /// Whether unchanged auctions skip the matrix refill and solve.
    pub fn warm_start(&self) -> bool {
        self.shards[0].warm_start()
    }

    /// Enables or disables top-k pruned winner determination on every
    /// shard; see [`Marketplace::set_pruned`].
    pub fn set_pruned(&mut self, enabled: bool) {
        for shard in &mut self.shards {
            shard.set_pruned(enabled);
        }
    }

    /// Enables or disables warm-started assignments on every shard; see
    /// [`Marketplace::set_warm_start`].
    pub fn set_warm_start(&mut self, enabled: bool) {
        for shard in &mut self.shards {
            shard.set_warm_start(enabled);
        }
    }

    /// The global market clock: total auctions served across all shards.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Total campaigns registered across every shard (each campaign lives
    /// on exactly one shard — the one owning its keyword).
    pub fn num_campaigns_total(&self) -> usize {
        self.shards.iter().map(|s| s.num_campaigns_total()).sum()
    }

    /// A point-in-time summary of market shape and progress across all
    /// shards.
    pub fn snapshot(&self) -> crate::marketplace::MarketSnapshot {
        crate::marketplace::MarketSnapshot {
            advertisers: self.num_advertisers(),
            campaigns: self.num_campaigns_total(),
            keywords: self.num_keywords,
            slots: self.num_slots(),
            shards: self.shards.len(),
            auctions: self.clock,
        }
    }

    // -- control plane ------------------------------------------------------

    /// Registers an advertiser on every shard (handles are global — a
    /// campaign can open on any keyword regardless of which shard owns it).
    pub fn register_advertiser(&mut self, name: impl Into<String>) -> AdvertiserHandle {
        let name = name.into();
        let mut handle = None;
        for shard in &mut self.shards {
            let h = shard.register_advertiser(name.clone());
            debug_assert!(handle.is_none() || handle == Some(h), "shards diverged");
            handle = Some(h);
        }
        if self.journal.is_some() {
            self.record(&MutationRecord::RegisterAdvertiser { name });
        }
        handle.expect("a sharded marketplace has at least one shard")
    }

    /// The display name an advertiser registered under.
    pub fn advertiser_name(&self, advertiser: AdvertiserHandle) -> Result<&str, MarketError> {
        self.shards[0].advertiser_name(advertiser)
    }

    /// Number of registered advertisers.
    pub fn num_advertisers(&self) -> usize {
        self.shards[0].num_advertisers()
    }

    /// Registers a campaign on the shard owning `keyword`; see
    /// [`Marketplace::add_campaign`]. Only that shard's keyword book is
    /// rebuilt on its next serve.
    pub fn add_campaign(
        &mut self,
        advertiser: AdvertiserHandle,
        keyword: usize,
        spec: CampaignSpec,
    ) -> Result<CampaignId, MarketError> {
        self.check_keyword(keyword)?;
        // Extract the journalable parts *before* the spec is consumed; a
        // spec the journal cannot represent is rejected up front so the
        // market and its journal never diverge.
        let parts = if self.journal.is_some() {
            match spec.per_click_parts() {
                Some(parts) => Some(parts),
                None => {
                    let next = self.owner(keyword).num_campaigns(keyword)?;
                    return Err(MarketError::NotDurable(CampaignId::from_parts(
                        keyword, next,
                    )));
                }
            }
        } else {
            None
        };
        let id = self
            .owner_mut(keyword)
            .add_campaign(advertiser, keyword, spec)?;
        if let Some(parts) = parts {
            self.record(&MutationRecord::AddCampaign {
                advertiser: advertiser.index(),
                keyword,
                bid_cents: parts.bid.cents(),
                click_value_cents: parts.click_value.cents(),
                roi_target: parts.roi_target,
                click_probs: parts.click_probs,
                purchase_probs: parts.purchase_probs,
                targeting: parts.targeting,
            });
        }
        Ok(id)
    }

    /// Number of campaigns registered on a keyword.
    pub fn num_campaigns(&self, keyword: usize) -> Result<usize, MarketError> {
        self.check_keyword(keyword)?;
        self.owner(keyword).num_campaigns(keyword)
    }

    /// The advertiser owning a campaign.
    pub fn campaign_advertiser(&self, id: CampaignId) -> Result<AdvertiserHandle, MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner(id.keyword()).campaign_advertiser(id)
    }

    /// Whether a campaign is currently paused.
    pub fn is_paused(&self, id: CampaignId) -> Result<bool, MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner(id.keyword()).is_paused(id)
    }

    /// Sets a per-click campaign's bid — `O(log n)` on the owning shard's
    /// keyword-local logical bid index; see [`Marketplace::update_bid`].
    pub fn update_bid(&mut self, id: CampaignId, bid: Money) -> Result<(), MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner_mut(id.keyword()).update_bid(id, bid)?;
        self.record(&MutationRecord::UpdateBid {
            keyword: id.keyword(),
            index: id.index(),
            bid_cents: bid.cents(),
        });
        Ok(())
    }

    /// Sets or clears a per-click campaign's ROI target; see
    /// [`Marketplace::set_roi_target`].
    pub fn set_roi_target(
        &mut self,
        id: CampaignId,
        target: Option<f64>,
    ) -> Result<(), MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner_mut(id.keyword()).set_roi_target(id, target)?;
        self.record(&MutationRecord::SetRoiTarget {
            keyword: id.keyword(),
            index: id.index(),
            target,
        });
        Ok(())
    }

    /// Pauses a campaign on its owning shard; see
    /// [`Marketplace::pause_campaign`].
    pub fn pause_campaign(&mut self, id: CampaignId) -> Result<(), MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner_mut(id.keyword()).pause_campaign(id)?;
        self.record(&MutationRecord::PauseCampaign {
            keyword: id.keyword(),
            index: id.index(),
        });
        Ok(())
    }

    /// Resumes a paused campaign.
    pub fn resume_campaign(&mut self, id: CampaignId) -> Result<(), MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner_mut(id.keyword()).resume_campaign(id)?;
        self.record(&MutationRecord::ResumeCampaign {
            keyword: id.keyword(),
            index: id.index(),
        });
        Ok(())
    }

    /// A per-click campaign's current effective bid, read from the owning
    /// shard's logical bid index.
    pub fn current_bid(&self, id: CampaignId) -> Result<Money, MarketError> {
        self.check_keyword(id.keyword())
            .map_err(|_| MarketError::UnknownCampaign(id))?;
        self.owner(id.keyword()).current_bid(id)
    }

    /// The highest effective per-click bids on a keyword, descending.
    pub fn top_bids(
        &self,
        keyword: usize,
        limit: usize,
    ) -> Result<Vec<(CampaignId, Money)>, MarketError> {
        self.check_keyword(keyword)?;
        self.owner(keyword).top_bids(keyword, limit)
    }

    // -- query serving ------------------------------------------------------

    /// Serves one query on its owning shard (no worker threads involved)
    /// and returns the fully typed outcome. Identical, auction for
    /// auction, to an unsharded keyword-local-RNG [`Marketplace`] serving
    /// the same stream.
    pub fn serve(&mut self, request: QueryRequest) -> Result<AuctionResponse, MarketError> {
        let keyword = self.check_keyword(request.keyword)?;
        self.clock += 1;
        let time = self.clock;
        let response = self
            .owner_mut(keyword)
            .serve_at(keyword, &request.attrs, time);
        if self.journal.is_some() {
            self.record(&MutationRecord::Serve {
                keyword,
                attrs: request.attrs,
            });
        }
        Ok(response)
    }

    /// Serves a mixed-keyword query stream across all shards in parallel.
    ///
    /// The stream is split into maximal same-keyword chunks (each one
    /// [`crate::AuctionEngine::run_batch`] call on the owning shard's
    /// persistent engine, exactly as in [`Marketplace::serve_batch`]); the
    /// chunks are dealt to their owning shards, and every shard with work
    /// runs its chunks on a [`std::thread::scope`] worker. Per-chunk
    /// reports are merged back **in stream order**, so the aggregate —
    /// including the floating-point `expected_revenue` sums — is
    /// bit-identical to the unsharded serve of the same stream.
    pub fn serve_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<MarketBatchReport, MarketError> {
        for request in requests {
            self.check_keyword(request.keyword)?;
        }
        // Chunk the stream and deal the chunks to their owning shards.
        let num_shards = self.shards.len();
        let mut work: Vec<Vec<Chunk>> = vec![Vec::new(); num_shards];
        let mut idx = 0;
        let mut i = 0;
        let mut time = self.clock;
        while i < requests.len() {
            let keyword = requests[i].keyword;
            let mut j = i + 1;
            while j < requests.len() && requests[j].keyword == keyword {
                j += 1;
            }
            work[self.shard_of(keyword)].push(Chunk {
                idx,
                keyword,
                start: i,
                len: j - i,
                start_time: time,
            });
            idx += 1;
            time += (j - i) as u64;
            i = j;
        }

        let num_keywords = self.num_keywords;
        let busy = work.iter().filter(|w| !w.is_empty()).count();
        // (chunk index, keyword, report) triples from every shard; merged
        // in stream order below.
        let mut chunk_reports: Vec<(usize, usize, BatchReport)> = if busy <= 1 {
            // Zero or one shard has work: serve inline, skip the threads.
            let mut out = Vec::with_capacity(idx);
            for (shard, chunks) in self.shards.iter_mut().zip(&work) {
                for c in chunks {
                    out.push((
                        c.idx,
                        c.keyword,
                        shard.serve_run_at(&requests[c.start..c.start + c.len], c.start_time),
                    ));
                }
            }
            out
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(busy);
                for (shard, chunks) in self.shards.iter_mut().zip(&work) {
                    if chunks.is_empty() {
                        continue;
                    }
                    handles.push(scope.spawn(move || {
                        chunks
                            .iter()
                            .map(|c| {
                                (
                                    c.idx,
                                    c.keyword,
                                    shard.serve_run_at(
                                        &requests[c.start..c.start + c.len],
                                        c.start_time,
                                    ),
                                )
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };
        chunk_reports.sort_unstable_by_key(|(idx, _, _)| *idx);

        self.clock = time;
        let mut out = MarketBatchReport {
            total: BatchReport::default(),
            per_keyword: vec![BatchReport::default(); num_keywords],
            chunks: 0,
        };
        for (_, keyword, report) in &chunk_reports {
            out.per_keyword[*keyword].absorb(report);
            out.total.absorb(report);
            out.chunks += 1;
        }
        if self.journal.is_some() {
            let queries = requests
                .iter()
                .map(|r| (r.keyword, r.attrs.clone()))
                .collect();
            self.record(&MutationRecord::ServeBatch { queries });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marketplace::Marketplace;

    fn builder(keywords: usize) -> MarketplaceBuilder {
        Marketplace::builder()
            .slots(2)
            .keywords(keywords)
            .seed(99)
            .default_click_probs(vec![0.7, 0.35])
    }

    /// A populated market: two advertisers, one campaign per keyword each.
    fn populate<M>(
        market: &mut M,
        keywords: usize,
        mut register: impl FnMut(&mut M, &str) -> AdvertiserHandle,
        mut add: impl FnMut(&mut M, AdvertiserHandle, usize, CampaignSpec) -> CampaignId,
    ) -> Vec<CampaignId> {
        let a = register(market, "a");
        let b = register(market, "b");
        let mut ids = Vec::new();
        for kw in 0..keywords {
            ids.push(add(
                market,
                a,
                kw,
                CampaignSpec::per_click(Money::from_cents(10 + kw as i64)),
            ));
            ids.push(add(
                market,
                b,
                kw,
                CampaignSpec::per_click(Money::from_cents(4 + 2 * kw as i64)),
            ));
        }
        ids
    }

    fn populated_sharded(keywords: usize, shards: usize) -> (ShardedMarketplace, Vec<CampaignId>) {
        let mut m = builder(keywords).build_sharded(shards).expect("valid");
        let ids = populate(
            &mut m,
            keywords,
            |m, n| m.register_advertiser(n),
            |m, a, kw, s| m.add_campaign(a, kw, s).expect("accepted"),
        );
        (m, ids)
    }

    fn populated_unsharded(keywords: usize) -> (Marketplace, Vec<CampaignId>) {
        let mut m = builder(keywords)
            .keyword_local_rng(true)
            .build()
            .expect("valid");
        let ids = populate(
            &mut m,
            keywords,
            |m, n| m.register_advertiser(n),
            |m, a, kw, s| m.add_campaign(a, kw, s).expect("accepted"),
        );
        (m, ids)
    }

    fn mixed_stream(keywords: usize, len: usize) -> Vec<QueryRequest> {
        let mut state = 0xD15EA5Eu64;
        (0..len)
            .map(|_| {
                state = splitmix64(state);
                QueryRequest::new((state % keywords as u64) as usize)
            })
            .collect()
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        assert_eq!(
            builder(4).build_sharded(0).err(),
            Some(MarketError::NoShards)
        );
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let (m, _) = populated_sharded(16, 5);
        assert_eq!(m.num_shards(), 5);
        for kw in 0..16 {
            let s = m.shard_of(kw);
            assert!(s < 5);
            assert_eq!(s, m.shard_of(kw), "routing must be deterministic");
        }
        // With 16 keywords over 5 shards, more than one shard owns work.
        let owners: std::collections::HashSet<usize> = (0..16).map(|kw| m.shard_of(kw)).collect();
        assert!(owners.len() > 1);
    }

    #[test]
    fn serve_matches_unsharded_keyword_local_marketplace() {
        for shards in [1, 2, 4, 7] {
            let (mut sharded, _) = populated_sharded(9, shards);
            let (mut plain, _) = populated_unsharded(9);
            for (t, request) in mixed_stream(9, 60).into_iter().enumerate() {
                let got = sharded.serve(request.clone()).expect("keyword in range");
                let want = plain.serve(request).expect("keyword in range");
                assert_eq!(got, want, "shards={shards} t={t}");
            }
            assert_eq!(sharded.now(), plain.now());
        }
    }

    #[test]
    fn serve_batch_matches_unsharded_keyword_local_marketplace() {
        let requests = mixed_stream(9, 300);
        let (mut plain, _) = populated_unsharded(9);
        let want = plain.serve_batch(&requests).expect("keywords in range");
        for shards in [1, 2, 4, 7] {
            let (mut sharded, _) = populated_sharded(9, shards);
            let got = sharded.serve_batch(&requests).expect("keywords in range");
            assert_eq!(got, want, "shards={shards}");
            assert_eq!(sharded.now(), 300);
        }
    }

    #[test]
    fn incremental_updates_route_to_the_owning_shard() {
        let (mut sharded, ids) = populated_sharded(6, 4);
        let (mut plain, plain_ids) = populated_unsharded(6);
        assert_eq!(ids, plain_ids);
        // Warm the engines, then update bids incrementally on both sides.
        let warm = mixed_stream(6, 24);
        sharded.serve_batch(&warm).expect("in range");
        plain.serve_batch(&warm).expect("in range");
        for (i, &id) in ids.iter().enumerate() {
            let bid = Money::from_cents(1 + (7 * i % 23) as i64);
            sharded.update_bid(id, bid).expect("per-click");
            plain.update_bid(id, bid).expect("per-click");
            assert_eq!(sharded.current_bid(id).unwrap(), bid);
        }
        sharded.pause_campaign(ids[3]).expect("known");
        plain.pause_campaign(ids[3]).expect("known");
        assert!(sharded.is_paused(ids[3]).unwrap());
        for kw in 0..6 {
            assert_eq!(
                sharded.top_bids(kw, 8).unwrap(),
                plain.top_bids(kw, 8).unwrap()
            );
        }
        // Post-update serving still matches, auction for auction.
        for request in mixed_stream(6, 40) {
            assert_eq!(
                sharded.serve(request.clone()).unwrap(),
                plain.serve(request).unwrap()
            );
        }
    }

    #[test]
    fn typed_errors_surface_through_the_dispatch_table() {
        let (mut m, _) = populated_sharded(4, 2);
        assert!(matches!(
            m.serve(QueryRequest::new(99)),
            Err(MarketError::UnknownKeyword { keyword: 99, .. })
        ));
        assert!(matches!(
            m.serve_batch(&[QueryRequest::new(0), QueryRequest::new(44)]),
            Err(MarketError::UnknownKeyword { keyword: 44, .. })
        ));
        let ghost = CampaignId::new(99, 0);
        assert_eq!(
            m.update_bid(ghost, Money::ZERO),
            Err(MarketError::UnknownCampaign(ghost))
        );
        assert_eq!(
            m.current_bid(ghost),
            Err(MarketError::UnknownCampaign(ghost))
        );
    }

    #[test]
    fn parse_shards_is_typed() {
        assert_eq!(parse_shards("4"), Ok(4));
        assert_eq!(parse_shards(" 2 "), Ok(2));
        assert_eq!(parse_shards("0"), Err(ParseShardsError::Zero));
        assert_eq!(
            parse_shards("four"),
            Err(ParseShardsError::Invalid("four".into()))
        );
        let err: Box<dyn std::error::Error> = Box::new(ParseShardsError::Zero);
        assert!(err.to_string().contains("positive"));
    }

    /// Test journal: records into a shared Vec so the test can inspect
    /// what the marketplace reported.
    #[derive(Debug, Default, Clone)]
    struct VecJournal(std::sync::Arc<std::sync::Mutex<Vec<MutationRecord>>>);

    impl MutationJournal for VecJournal {
        fn record(&mut self, record: &MutationRecord) {
            self.0.lock().unwrap().push(record.clone());
        }
    }

    #[test]
    fn capture_state_round_trips_bit_identically() {
        for shards in [1, 2, 4] {
            let (mut live, ids) = populated_sharded(9, shards);
            // Advance mid-stream: every RNG stream and the clock move.
            live.serve_batch(&mixed_stream(9, 120)).expect("in range");
            live.update_bid(ids[2], Money::from_cents(77)).unwrap();
            live.pause_campaign(ids[5]).unwrap();
            live.set_roi_target(ids[0], Some(1.5)).unwrap();

            let state = live.capture_state().expect("per-click campaigns only");
            let mut restored = ShardedMarketplace::from_state(&state).expect("valid state");

            assert_eq!(restored.now(), live.now());
            assert_eq!(restored.snapshot(), live.snapshot());
            for kw in 0..9 {
                assert_eq!(
                    restored.top_bids(kw, 8).unwrap(),
                    live.top_bids(kw, 8).unwrap()
                );
            }
            for &id in &ids {
                assert_eq!(restored.current_bid(id), live.current_bid(id));
                assert_eq!(restored.is_paused(id), live.is_paused(id));
            }
            // Future auctions are bit-identical: same winners, clicks,
            // purchases, and charges.
            for (t, request) in mixed_stream(9, 80).into_iter().enumerate() {
                let want = live.serve(request.clone()).expect("in range");
                let got = restored.serve(request).expect("in range");
                assert_eq!(got, want, "shards={shards} t={t}");
            }
            // And the re-captured state matches a fresh capture exactly.
            assert_eq!(
                restored.capture_state().unwrap(),
                live.capture_state().unwrap()
            );
        }
    }

    #[test]
    fn journal_replay_reproduces_the_market() {
        let journal = VecJournal::default();
        let mut live = builder(6).build_sharded(3).expect("valid");
        live.set_journal(Box::new(journal.clone()));
        assert!(live.journal_attached());

        let ids = populate(
            &mut live,
            6,
            |m, n| m.register_advertiser(n),
            |m, a, kw, s| m.add_campaign(a, kw, s).expect("accepted"),
        );
        for request in mixed_stream(6, 30) {
            live.serve(request).expect("in range");
        }
        live.update_bid(ids[1], Money::from_cents(3)).unwrap();
        live.pause_campaign(ids[4]).unwrap();
        live.serve_batch(&mixed_stream(6, 40)).expect("in range");
        live.resume_campaign(ids[4]).unwrap();
        live.set_roi_target(ids[2], Some(2.0)).unwrap();
        live.set_roi_target(ids[2], None).unwrap();

        // Replay the journal into a fresh market of the same build.
        let mut replayed = builder(6).build_sharded(3).expect("valid");
        for record in journal.0.lock().unwrap().iter() {
            crate::journal::apply(&mut replayed, record).expect("replay applies cleanly");
        }
        assert_eq!(replayed.now(), live.now());
        assert_eq!(
            replayed.capture_state().unwrap(),
            live.capture_state().unwrap()
        );
        // Journaled serves replayed the RNG streams to the same position:
        // the next auctions agree bit for bit.
        for request in mixed_stream(6, 25) {
            assert_eq!(
                replayed.serve(request.clone()).unwrap(),
                live.serve(request).unwrap()
            );
        }
    }

    #[test]
    fn journalled_markets_reject_non_durable_campaigns() {
        let mut m = builder(4).build_sharded(2).expect("valid");
        m.set_journal(Box::new(VecJournal::default()));
        let a = m.register_advertiser("a");
        let err = m
            .add_campaign(
                a,
                1,
                CampaignSpec::table(ssa_bidlang::BidsTable::single_feature(Money::from_cents(2))),
            )
            .expect_err("table campaigns are not durable");
        assert!(matches!(err, MarketError::NotDurable(_)), "{err:?}");
        // The rejection was a pure no-op.
        assert_eq!(m.num_campaigns(1).unwrap(), 0);
        // Without a journal the same spec is accepted.
        let mut free = builder(4).build_sharded(2).expect("valid");
        let a = free.register_advertiser("a");
        free.add_campaign(
            a,
            1,
            CampaignSpec::table(ssa_bidlang::BidsTable::single_feature(Money::from_cents(2))),
        )
        .expect("accepted without a journal");
        // But capture then refuses: the campaign cannot be serialized.
        assert!(matches!(
            free.capture_state(),
            Err(MarketError::NotDurable(_))
        ));
    }

    #[test]
    fn advertisers_are_global() {
        let (mut m, _) = populated_sharded(6, 3);
        assert_eq!(m.num_advertisers(), 2);
        let c = m.register_advertiser("late");
        assert_eq!(m.advertiser_name(c).unwrap(), "late");
        // The new advertiser can open campaigns on any shard's keywords.
        for kw in 0..6 {
            m.add_campaign(c, kw, CampaignSpec::per_click(Money::from_cents(2)))
                .expect("accepted on every shard");
        }
    }
}
