//! Pricing rules (Section III's framing: winner determination first, then a
//! "very simple computation" per pricing scheme).
//!
//! * [`PricingScheme::PayYourBid`] — first-price: advertisers pay exactly
//!   what their realised formulas bid. This is the accounting assumption of
//!   the winner-determination objective itself.
//! * [`PricingScheme::Gsp`] — the §V "slight generalization of generalized
//!   second-pricing": the winner of slot `j` pays, **per click**, the
//!   per-click-equivalent bid of the best *losing* candidate for slot `j`,
//!   capped at the winner's own per-click equivalent. In the classical
//!   single-feature separable setting this degenerates to textbook GSP.
//! * [`PricingScheme::Vickrey`] — VCG: each winner pays the externality it
//!   imposes, computed exactly by re-solving the matching without the
//!   winner. Charged per auction (not per click), as in Clarke–Groves.

use ssa_matching::{max_weight_assignment, Assignment, RevenueMatrix};

/// Which pricing rule the engine applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingScheme {
    /// Advertisers pay their realised bids (first price).
    PayYourBid,
    /// Generalised second pricing, charged per click.
    Gsp,
    /// Vickrey–Clarke–Groves, charged per auction.
    Vickrey,
}

impl std::fmt::Display for PricingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PricingScheme::PayYourBid => "pay-your-bid",
            PricingScheme::Gsp => "gsp",
            PricingScheme::Vickrey => "vcg",
        })
    }
}

/// Error returned when parsing a [`PricingScheme`] from its CLI name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePricingError {
    /// The name matched none of the accepted scheme names or aliases.
    UnknownScheme(String),
}

impl std::fmt::Display for ParsePricingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParsePricingError::UnknownScheme(name) => write!(
                f,
                "unknown pricing scheme {name:?} (expected pay-your-bid, gsp, or vcg)"
            ),
        }
    }
}

impl std::error::Error for ParsePricingError {}

impl std::str::FromStr for PricingScheme {
    type Err = ParsePricingError;

    /// Parses the [`Display`](std::fmt::Display) names plus common aliases
    /// (`first-price`, `vickrey`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pay-your-bid" | "first-price" | "first" => Ok(PricingScheme::PayYourBid),
            "gsp" => Ok(PricingScheme::Gsp),
            "vcg" | "vickrey" => Ok(PricingScheme::Vickrey),
            other => Err(ParsePricingError::UnknownScheme(other.to_string())),
        }
    }
}

/// Price attached to a slot for this auction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotPrice {
    /// Slot index (zero-based).
    pub slot: usize,
    /// Winning advertiser.
    pub winner: usize,
    /// For [`PricingScheme::Gsp`]: price per click (in cents, fractional).
    /// For [`PricingScheme::Vickrey`]: lump-sum payment for the auction.
    pub amount: f64,
}

/// GSP prices: for each filled slot, the expected-revenue of the best
/// **unassigned** advertiser for that slot, converted to a per-click price
/// via the winner's click probability and capped by the winner's own
/// per-click equivalent.
///
/// `p_click(winner, slot)` is supplied by the caller so that this module
/// stays independent of the probability model representation.
pub fn gsp_prices(
    matrix: &RevenueMatrix,
    assignment: &Assignment,
    p_click: &dyn Fn(usize, usize) -> f64,
) -> Vec<SlotPrice> {
    let assigned = assignment.adv_to_slot(matrix.num_advertisers());
    let mut prices = Vec::new();
    gsp_prices_into(matrix, assignment, &assigned, p_click, &mut prices);
    prices
}

/// In-place variant of [`gsp_prices`] for the batched pipeline: takes the
/// advertiser-to-slot map (`assignment.adv_to_slot`, which hot paths
/// already maintain as scratch) and writes into `prices` (cleared first),
/// so pricing performs no per-auction allocation.
pub fn gsp_prices_into(
    matrix: &RevenueMatrix,
    assignment: &Assignment,
    assigned: &[Option<usize>],
    p_click: &dyn Fn(usize, usize) -> f64,
    prices: &mut Vec<SlotPrice>,
) {
    let n = matrix.num_advertisers();
    debug_assert_eq!(assigned.len(), n, "adv_to_slot map must cover all rows");
    prices.clear();
    for (slot, winner) in assignment.slot_to_adv.iter().enumerate() {
        let Some(winner) = *winner else { continue };
        // Best losing expected revenue for this slot.
        let mut runner_up = 0.0f64;
        #[allow(clippy::needless_range_loop)] // `adv` indexes matrix and assignment
        for adv in 0..n {
            if assigned[adv].is_none() {
                let w = matrix.get(adv, slot);
                if w.is_finite() && w > runner_up {
                    runner_up = w;
                }
            }
        }
        let p = p_click(winner, slot);
        let own_equiv = if p > 0.0 {
            matrix.get(winner, slot).max(0.0) / p
        } else {
            0.0
        };
        let per_click = if p > 0.0 {
            (runner_up / p).min(own_equiv)
        } else {
            0.0
        };
        prices.push(SlotPrice {
            slot,
            winner,
            amount: per_click.max(0.0),
        });
    }
}

/// Exact VCG payments: for each winner `i`,
/// `payment(i) = welfare(others | i absent) − welfare(others | chosen)`.
///
/// `welfare(others | chosen)` is the total matching weight minus `i`'s own
/// edge. Removing an advertiser is implemented by re-solving the matching
/// on the matrix with `i`'s row excluded — `O(k)` extra matchings overall
/// since only winners need prices.
pub fn vcg_prices(matrix: &RevenueMatrix, assignment: &Assignment) -> Vec<SlotPrice> {
    let n = matrix.num_advertisers();
    let mut prices = Vec::new();
    for (slot, winner) in assignment.slot_to_adv.iter().enumerate() {
        let Some(winner) = *winner else { continue };
        // Matrix without the winner.
        let others: Vec<usize> = (0..n).filter(|&i| i != winner).collect();
        let reduced = matrix.restrict_advertisers(&others);
        let without = max_weight_assignment(&reduced).total_weight;
        let own_edge = matrix.get(winner, slot);
        let others_with = assignment.total_weight - own_edge;
        let payment = (without - others_with).max(0.0);
        prices.push(SlotPrice {
            slot,
            winner,
            amount: payment,
        });
    }
    prices
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_matching::max_weight_assignment;

    #[test]
    fn pricing_scheme_display_round_trips() {
        for scheme in [
            PricingScheme::PayYourBid,
            PricingScheme::Gsp,
            PricingScheme::Vickrey,
        ] {
            assert_eq!(scheme.to_string().parse::<PricingScheme>(), Ok(scheme));
        }
        assert_eq!("Vickrey".parse(), Ok(PricingScheme::Vickrey));
        assert_eq!("FIRST-PRICE".parse(), Ok(PricingScheme::PayYourBid));
        assert_eq!(
            "dutch".parse::<PricingScheme>(),
            Err(ParsePricingError::UnknownScheme("dutch".into()))
        );
        let err: Box<dyn std::error::Error> =
            Box::new("dutch".parse::<PricingScheme>().expect_err("must fail"));
        assert!(err.to_string().contains("dutch"));
    }

    /// Classical single-feature setting: separable clicks, per-click bids.
    /// GSP must reduce to "pay the next-highest bid".
    #[test]
    fn gsp_reduces_to_textbook_in_separable_case() {
        // Slot factors 0.2 / 0.1; advertiser factor 1; bids 10, 8, 5.
        let bids = [10.0, 8.0, 5.0];
        let slot_factors = [0.2, 0.1];
        let matrix = RevenueMatrix::from_fn(3, 2, |i, j| bids[i] * slot_factors[j]);
        let a = max_weight_assignment(&matrix);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
        let prices = gsp_prices(&matrix, &a, &|_, j| slot_factors[j]);
        // Winner of slot 1 (bid 10) pays the best loser's bid = 5?? No:
        // textbook GSP charges the next-highest *bid*; with only advertiser
        // 2 losing, both winners pay 5 per click.
        assert_eq!(prices.len(), 2);
        assert!((prices[0].amount - 5.0).abs() < 1e-9);
        assert!((prices[1].amount - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gsp_capped_by_own_bid() {
        // Loser has a larger expected revenue for slot 0 than the winner
        // could ever pay per click (winner excluded there by weights).
        let matrix = RevenueMatrix::from_rows(&[
            vec![2.0, 1.9], // winner overall
            vec![1.95, 0.0],
        ]);
        let a = max_weight_assignment(&matrix);
        let prices = gsp_prices(&matrix, &a, &|_, _| 1.0);
        for p in prices {
            let own = matrix.get(p.winner, p.slot);
            assert!(p.amount <= own + 1e-9, "price exceeds own bid equivalent");
        }
    }

    #[test]
    fn gsp_zero_when_no_losers() {
        let matrix = RevenueMatrix::from_rows(&[vec![5.0, 2.0], vec![4.0, 3.0]]);
        let a = max_weight_assignment(&matrix);
        let prices = gsp_prices(&matrix, &a, &|_, _| 0.5);
        assert!(prices.iter().all(|p| p.amount == 0.0));
    }

    #[test]
    fn vcg_on_figure9() {
        let matrix = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0], // Nike
            vec![8.0, 7.0], // Adidas
            vec![7.0, 6.0], // Reebok
            vec![7.0, 4.0], // Sketchers
        ]);
        let a = max_weight_assignment(&matrix);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
        let prices = vcg_prices(&matrix, &a);
        // Without Nike: best is Adidas→1, Reebok→2 = 14; others-with = 7.
        assert!((prices[0].amount - 7.0).abs() < 1e-9);
        // Without Adidas: Nike→1, Reebok→2 = 15; others-with = 9 → 6.
        assert!((prices[1].amount - 6.0).abs() < 1e-9);
    }

    #[test]
    fn vcg_never_exceeds_bid_and_is_nonnegative() {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 100) as f64
        };
        for _ in 0..20 {
            let matrix = RevenueMatrix::from_fn(5, 3, |_, _| next());
            let a = max_weight_assignment(&matrix);
            for p in vcg_prices(&matrix, &a) {
                assert!(p.amount >= 0.0);
                assert!(p.amount <= matrix.get(p.winner, p.slot) + 1e-9);
            }
        }
    }
}
