//! SQL bidding programs as first-class campaign programs.
//!
//! Section II-B of the paper makes *SQL bidding programs* the expressive
//! core of the system: advertisers submit "simple SQL updates without
//! recursion and side-effects", activated by triggers when an auction
//! begins, reading provider-maintained shared variables and emitting a
//! Bids table. [`SqlProgramBidder`] is that contract executed for real by
//! the [`ssa_minidb`] engine, packaged as a [`crate::Bidder`] so a SQL
//! program can be registered on a [`crate::marketplace::Marketplace`] via
//! [`crate::marketplace::CampaignSpec::sql_program`] like any other
//! campaign — and migrate to shard worker threads (`SqlProgramBidder` is
//! `Send`).
//!
//! # The host protocol
//!
//! The advertiser supplies two scripts:
//!
//! * **`tables`** — schema and initial data. It must create a
//!   single-column `Query` table (the trigger activation channel) and a
//!   `Bids` table whose first two columns are the formula text and the bid
//!   value in cents. An optional single-column `Outcome` table opts into
//!   post-auction settlement notifications. The script is executed once at
//!   construction through the prepared-statement layer, so `?`/`:name`
//!   placeholders in it are bound from the `params` argument — numeric
//!   initial state round-trips exactly instead of being string-formatted.
//! * **`program`** — the bidding program proper, normally `CREATE
//!   TRIGGER … AFTER INSERT ON Query { … }` (and, if settlement matters,
//!   a second trigger on `Outcome`).
//!
//! Per auction the host (the marketplace engine) then:
//!
//! 1. sets the shared variables `time` (the global auction clock) and
//!    `keyword` (the queried keyword's index),
//! 2. clears `Query` and inserts the keyword index into it — firing the
//!    program with exactly one fresh activation row (activation tables
//!    are host-managed scratch, cleared between auctions so long-lived
//!    campaigns stay memory-flat) —
//! 3. reads `SELECT` of the `Bids` table and submits one bid row per
//!    `(formula, value)` pair (formula texts are parsed once and cached).
//!
//! After the auction resolves, if `Outcome` exists, the host sets the
//! shared variables `slot` (1-based slot won, 0 if none), `clicked`,
//! `purchased` (0/1), and `price` (cents charged) and inserts `clicked`
//! into `Outcome` — firing the settlement trigger, which can keep ROI
//! statistics entirely in SQL.
//!
//! A program that errors mid-auction (type error, overflow, deleted
//! tables, …) submits **no bids** from that auction on: defective
//! programs are excluded from the matching rather than taking the
//! marketplace down. The first error is retained in
//! [`SqlProgramBidder::last_error`] for diagnosis.

use crate::bidder::{Bidder, BidderOutcome, QueryContext};
use ssa_bidlang::{parse_formula, BidsTable, Formula, Money};
use ssa_minidb::{Database, DbError, Params, Prepared, Value};
use std::collections::HashMap;
use std::fmt;

/// Why a pair of scripts could not be assembled into a
/// [`SqlProgramBidder`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlProgramError {
    /// A script failed to parse or execute.
    Db(DbError),
    /// The `tables` script did not create a required table.
    MissingTable(&'static str),
    /// `Query`/`Outcome` must have exactly one column (the host inserts a
    /// single activation value).
    ActivationArity {
        /// The offending table.
        table: &'static str,
        /// Columns it was declared with.
        got: usize,
    },
    /// `Bids` needs at least a formula column and a value column.
    BidsArity {
        /// Columns it was declared with.
        got: usize,
    },
}

impl fmt::Display for SqlProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlProgramError::Db(e) => write!(f, "SQL program rejected: {e}"),
            SqlProgramError::MissingTable(t) => {
                write!(f, "the tables script must create a {t} table")
            }
            SqlProgramError::ActivationArity { table, got } => write!(
                f,
                "{table} must have exactly one column (the host's activation value), found {got}"
            ),
            SqlProgramError::BidsArity { got } => write!(
                f,
                "Bids must have at least two columns (formula, value), found {got}"
            ),
        }
    }
}

impl std::error::Error for SqlProgramError {}

impl From<DbError> for SqlProgramError {
    fn from(e: DbError) -> Self {
        SqlProgramError::Db(e)
    }
}

/// A Section II-B SQL bidding program executing inside its own private
/// [`Database`], speaking the host protocol described in the
/// [module docs](crate::sqlprog).
pub struct SqlProgramBidder {
    db: Database,
    /// `SELECT` of the first two Bids columns — prepared once.
    read_bids: Prepared,
    /// Clears the activation tables between auctions so a long-lived
    /// campaign's memory stays flat (prepared once each).
    clear_query: Prepared,
    clear_outcome: Option<Prepared>,
    /// Whether the program opted into settlement via an `Outcome` table.
    has_outcome: bool,
    /// Formula-text → parsed formula cache (programs emit a small, stable
    /// set of formulas; parsing each text once keeps the hot path free of
    /// the formula parser).
    formulas: HashMap<String, Formula>,
    /// First execution error, if any; once set the program bids nothing.
    error: Option<DbError>,
}

impl SqlProgramBidder {
    /// Assembles a program: runs `tables` (with `params` bound through the
    /// prepared-statement layer), then `program`, then validates the host
    /// protocol's table contract.
    pub fn new(tables: &str, program: &str, params: &Params) -> Result<Self, SqlProgramError> {
        let mut db = Database::new();
        let mut setup = db.prepare(tables)?;
        setup.execute(&mut db, params)?;
        db.run(program)?;
        let query_cols = db
            .table("Query")
            .map_err(|_| SqlProgramError::MissingTable("Query"))?
            .schema()
            .len();
        if query_cols != 1 {
            return Err(SqlProgramError::ActivationArity {
                table: "Query",
                got: query_cols,
            });
        }
        let bids_cols = db
            .table("Bids")
            .map_err(|_| SqlProgramError::MissingTable("Bids"))?
            .schema()
            .len();
        if bids_cols < 2 {
            return Err(SqlProgramError::BidsArity { got: bids_cols });
        }
        let has_outcome = match db.table("Outcome") {
            Ok(t) => {
                let got = t.schema().len();
                if got != 1 {
                    return Err(SqlProgramError::ActivationArity {
                        table: "Outcome",
                        got,
                    });
                }
                true
            }
            Err(_) => false,
        };
        let read_bids = db.prepare("SELECT * FROM Bids")?;
        let clear_query = db.prepare("DELETE FROM Query")?;
        let clear_outcome = if has_outcome {
            Some(db.prepare("DELETE FROM Outcome")?)
        } else {
            None
        };
        // Lower every trigger body to a plan (and build the indexes those
        // plans ask for) now, so the first auction pays no planning cost.
        db.warm_plans();
        Ok(SqlProgramBidder {
            db,
            read_bids,
            clear_query,
            clear_outcome,
            has_outcome,
            formulas: HashMap::new(),
            error: None,
        })
    }

    /// The program's private database — the host-side escape hatch for
    /// inspecting (or, in tests, perturbing) program state.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Read-only view of the program's private database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Planner counters of the program's private database — exposes
    /// whether trigger executions ran on index probes or full scans.
    pub fn planner_stats(&self) -> ssa_minidb::PlannerStats {
        self.db.planner_stats()
    }

    /// The first error the program hit at auction time, if any. A failed
    /// program stops bidding (it submits empty tables) but stays
    /// registered.
    pub fn last_error(&self) -> Option<&DbError> {
        self.error.as_ref()
    }

    /// Runs one auction round: publish shared variables, fire the Query
    /// trigger, read the Bids table.
    fn round(&mut self, ctx: &QueryContext) -> Result<BidsTable, DbError> {
        self.db.set_var("time", Value::Int(ctx.time as i64));
        self.db.set_var("keyword", Value::Int(ctx.keyword as i64));
        // Each auction starts from a clean activation table: the trigger
        // sees exactly one fresh Query row, and a campaign serving millions
        // of auctions does not accumulate rows.
        self.clear_query.execute(&mut self.db, &Params::new())?;
        self.db
            .insert("Query", vec![Value::Int(ctx.keyword as i64)])?;
        let rows = self.read_bids.query(&mut self.db, &Params::new())?;
        let mut bids = Vec::with_capacity(rows.len());
        for row in rows {
            // Re-check the row shape on every read: a trigger body may
            // legally DROP and recreate Bids, and a defective program must
            // surface a typed error (and bid nothing), never a panic.
            if row.len() < 2 {
                return Err(DbError::Type(format!(
                    "Bids rows need (formula, value), found {} column(s)",
                    row.len()
                )));
            }
            let text = row[0].as_text()?;
            let formula = match self.formulas.get(text) {
                Some(f) => f.clone(),
                None => {
                    let parsed = parse_formula(text)
                        .map_err(|e| DbError::Type(format!("bad bid formula {text:?}: {e}")))?;
                    self.formulas.insert(text.to_string(), parsed.clone());
                    parsed
                }
            };
            bids.push((formula, Money::from_cents(row[1].as_int()?)));
        }
        Ok(BidsTable::new(bids))
    }

    /// Publishes the auction outcome and fires the settlement trigger.
    fn settle(&mut self, outcome: &BidderOutcome) -> Result<(), DbError> {
        let clicked = i64::from(outcome.clicked);
        self.db.set_var(
            "slot",
            Value::Int(outcome.slot.map(|s| s.position() as i64).unwrap_or(0)),
        );
        self.db.set_var("clicked", Value::Int(clicked));
        self.db
            .set_var("purchased", Value::Int(i64::from(outcome.purchased)));
        self.db.set_var("price", Value::Int(outcome.price.cents()));
        if let Some(clear) = &mut self.clear_outcome {
            clear.execute(&mut self.db, &Params::new())?;
        }
        self.db.insert("Outcome", vec![Value::Int(clicked)])
    }
}

impl Bidder for SqlProgramBidder {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        if self.error.is_some() {
            return BidsTable::empty();
        }
        match self.round(ctx) {
            Ok(bids) => bids,
            Err(e) => {
                self.error = Some(e);
                BidsTable::empty()
            }
        }
    }

    fn on_outcome(&mut self, _ctx: &QueryContext, outcome: &BidderOutcome) {
        if !self.has_outcome || self.error.is_some() {
            return;
        }
        if let Err(e) = self.settle(outcome) {
            self.error = Some(e);
        }
    }
}

impl fmt::Debug for SqlProgramBidder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SqlProgramBidder")
            .field("tables", &self.db.table_names())
            .field("has_outcome", &self.has_outcome)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_bidlang::SlotId;

    const TABLES: &str = "
        CREATE TABLE Query (kw INT);
        CREATE TABLE Bids (formula TEXT, value INT);
        INSERT INTO Bids VALUES ('Click', :start);
    ";

    const PROGRAM: &str = "
        CREATE TRIGGER bid AFTER INSERT ON Query
        {
          UPDATE Bids SET value = value + 1;
        }
    ";

    fn ctx(time: u64) -> QueryContext {
        QueryContext {
            time,
            keyword: 0,
            num_keywords: 1,
        }
    }

    #[test]
    fn fires_the_trigger_and_reads_bids() {
        let mut b =
            SqlProgramBidder::new(TABLES, PROGRAM, &Params::new().bind("start", 7)).unwrap();
        let bids = b.on_query(&ctx(1));
        assert_eq!(bids.len(), 1);
        assert_eq!(bids.rows()[0].formula, Formula::click());
        assert_eq!(bids.rows()[0].value, Money::from_cents(8));
        assert_eq!(b.on_query(&ctx(2)).rows()[0].value, Money::from_cents(9));
        assert!(b.last_error().is_none());
    }

    #[test]
    fn shared_variables_are_visible() {
        let program = "
            CREATE TRIGGER bid AFTER INSERT ON Query
            { UPDATE Bids SET value = time * 10 + keyword; }
        ";
        let mut b =
            SqlProgramBidder::new(TABLES, program, &Params::new().bind("start", 0)).unwrap();
        let bids = b.on_query(&QueryContext {
            time: 4,
            keyword: 2,
            num_keywords: 3,
        });
        assert_eq!(bids.rows()[0].value, Money::from_cents(42));
    }

    #[test]
    fn settlement_trigger_sees_the_outcome() {
        let tables = "
            CREATE TABLE Query (kw INT);
            CREATE TABLE Bids (formula TEXT, value INT);
            CREATE TABLE Outcome (clicked INT);
            CREATE TABLE Spend (total INT);
            INSERT INTO Bids VALUES ('Click', 5);
            INSERT INTO Spend VALUES (0);
        ";
        let program = "
            CREATE TRIGGER settle AFTER INSERT ON Outcome
            {
              IF clicked = 1 THEN
                UPDATE Spend SET total = total + price;
              ENDIF;
            }
        ";
        let mut b = SqlProgramBidder::new(tables, program, &Params::new()).unwrap();
        b.on_query(&ctx(1));
        b.on_outcome(
            &ctx(1),
            &BidderOutcome {
                slot: Some(SlotId::new(1)),
                clicked: true,
                purchased: false,
                price: Money::from_cents(3),
            },
        );
        b.on_outcome(&ctx(2), &BidderOutcome::lost());
        assert_eq!(
            b.db_mut().query("SELECT total FROM Spend").unwrap()[0][0],
            Value::Int(3)
        );
    }

    #[test]
    fn defective_programs_bid_nothing_but_stay_up() {
        // The program divides by a value that reaches zero: from the first
        // failing auction on, the bidder submits empty tables.
        let tables = "
            CREATE TABLE Query (kw INT);
            CREATE TABLE Bids (formula TEXT, value INT);
            INSERT INTO Bids VALUES ('Click', 6);
        ";
        let program = "
            CREATE TRIGGER bid AFTER INSERT ON Query
            { UPDATE Bids SET value = value / (3 - time); }
        ";
        let mut b = SqlProgramBidder::new(tables, program, &Params::new()).unwrap();
        assert_eq!(b.on_query(&ctx(1)).len(), 1); // 6 / 2 = 3
        assert_eq!(b.on_query(&ctx(2)).len(), 1); // 3 / 1 = 3
        assert!(b.on_query(&ctx(3)).is_empty(), "division by zero");
        assert_eq!(b.last_error(), Some(&DbError::DivisionByZero));
        assert!(b.on_query(&ctx(4)).is_empty(), "stays excluded");
    }

    #[test]
    fn activation_tables_stay_flat_across_auctions() {
        let tables = "
            CREATE TABLE Query (kw INT);
            CREATE TABLE Outcome (clicked INT);
            CREATE TABLE Bids (formula TEXT, value INT);
            INSERT INTO Bids VALUES ('Click', 5);
        ";
        let mut b = SqlProgramBidder::new(tables, "", &Params::new()).unwrap();
        for t in 1..=50 {
            b.on_query(&ctx(t));
            b.on_outcome(&ctx(t), &BidderOutcome::lost());
        }
        assert_eq!(b.db().table("Query").unwrap().len(), 1);
        assert_eq!(b.db().table("Outcome").unwrap().len(), 1);
    }

    #[test]
    fn a_program_that_reshapes_bids_errors_instead_of_panicking() {
        // Trigger bodies may legally contain DDL; a program that drops and
        // recreates Bids with too few columns must surface a typed error
        // (and bid nothing), not crash the serving thread.
        let tables = "
            CREATE TABLE Query (kw INT);
            CREATE TABLE Bids (formula TEXT, value INT);
            INSERT INTO Bids VALUES ('Click', 5);
        ";
        let program = "
            CREATE TRIGGER sabotage AFTER INSERT ON Query
            {
              DROP TABLE Bids;
              CREATE TABLE Bids (formula TEXT);
              INSERT INTO Bids VALUES ('Click');
            }
        ";
        let mut b = SqlProgramBidder::new(tables, program, &Params::new()).unwrap();
        assert!(b.on_query(&ctx(1)).is_empty());
        assert!(matches!(b.last_error(), Some(DbError::Type(_))));
        assert!(b.on_query(&ctx(2)).is_empty(), "stays excluded");
    }

    #[test]
    fn protocol_violations_are_typed_errors() {
        assert_eq!(
            SqlProgramBidder::new(
                "CREATE TABLE Bids (formula TEXT, value INT)",
                "",
                &Params::new()
            )
            .unwrap_err(),
            SqlProgramError::MissingTable("Query")
        );
        assert_eq!(
            SqlProgramBidder::new("CREATE TABLE Query (a INT, b INT)", "", &Params::new())
                .unwrap_err(),
            SqlProgramError::ActivationArity {
                table: "Query",
                got: 2
            }
        );
        assert_eq!(
            SqlProgramBidder::new(
                "CREATE TABLE Query (kw INT); CREATE TABLE Bids (formula TEXT)",
                "",
                &Params::new()
            )
            .unwrap_err(),
            SqlProgramError::BidsArity { got: 1 }
        );
        assert!(matches!(
            SqlProgramBidder::new("CREATE SOMETHING", "", &Params::new()),
            Err(SqlProgramError::Db(DbError::Parse { .. }))
        ));
        // Error text is readable.
        let err: Box<dyn std::error::Error> = Box::new(SqlProgramError::MissingTable("Bids"));
        assert!(err.to_string().contains("Bids"));
    }

    #[test]
    fn bad_formula_text_disables_the_program() {
        let tables = "
            CREATE TABLE Query (kw INT);
            CREATE TABLE Bids (formula TEXT, value INT);
            INSERT INTO Bids VALUES ('NotAFormula!!', 5);
        ";
        let mut b = SqlProgramBidder::new(tables, "", &Params::new()).unwrap();
        assert!(b.on_query(&ctx(1)).is_empty());
        assert!(matches!(b.last_error(), Some(DbError::Type(_))));
    }
}
