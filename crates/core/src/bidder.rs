//! The bidder abstraction: anything that can react to a query with a Bids
//! table (Section I-B's "program evaluation" step).

use ssa_bidlang::{BidsTable, Money, SlotId};

/// What a bidding program sees when an auction starts: the read-only shared
/// variables of Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryContext {
    /// Monotone auction clock (the shared `time` variable).
    pub time: u64,
    /// Index of the keyword in the user's query (the §V workload gives each
    /// query exactly one keyword with relevance 1).
    pub keyword: usize,
    /// Size of the keyword universe.
    pub num_keywords: usize,
}

/// What a bidder learns after the auction resolves (the paper's trigger
/// notifications for slots, clicks, and purchases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BidderOutcome {
    /// Slot won, if any.
    pub slot: Option<SlotId>,
    /// Whether the user clicked the ad.
    pub clicked: bool,
    /// Whether the user purchased via the ad.
    pub purchased: bool,
    /// Amount charged by the provider.
    pub price: Money,
}

impl BidderOutcome {
    /// Outcome for a bidder that won nothing.
    pub fn lost() -> Self {
        BidderOutcome {
            slot: None,
            clicked: false,
            purchased: false,
            price: Money::ZERO,
        }
    }
}

/// A bidding program from the engine's point of view.
pub trait Bidder {
    /// Step 3 of the auction: produce this auction's Bids table.
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable;

    /// Step 6: learn the outcome (slot, click, purchase, price). Default:
    /// ignore.
    fn on_outcome(&mut self, _ctx: &QueryContext, _outcome: &BidderOutcome) {}
}

/// The simplest bidder: a fixed Bids table, independent of the query.
#[derive(Debug, Clone)]
pub struct TableBidder {
    /// The table submitted at every auction.
    pub bids: BidsTable,
}

impl TableBidder {
    /// Wraps a fixed table.
    pub fn new(bids: BidsTable) -> Self {
        TableBidder { bids }
    }

    /// A classical single-feature (per-click) bidder.
    pub fn per_click(value: Money) -> Self {
        TableBidder::new(BidsTable::single_feature(value))
    }
}

impl Bidder for TableBidder {
    fn on_query(&mut self, _ctx: &QueryContext) -> BidsTable {
        self.bids.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_bidder_is_constant() {
        let mut b = TableBidder::per_click(Money::from_cents(7));
        let ctx = QueryContext {
            time: 1,
            keyword: 0,
            num_keywords: 1,
        };
        assert_eq!(
            b.on_query(&ctx),
            BidsTable::single_feature(Money::from_cents(7))
        );
        assert_eq!(b.on_query(&ctx), b.bids);
        b.on_outcome(&ctx, &BidderOutcome::lost()); // default no-op
    }
}
