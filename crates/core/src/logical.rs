//! Logical updates (Section IV-B): adjustment lists.
//!
//! "If we can maintain a decrement list — a list of programs, sorted by
//! their bid, that are currently decrementing their bid for a given keyword
//! — we can avoid explicitly decrementing each program's bid, by instead
//! performing a single logical decrement in constant time."
//!
//! [`AdjustmentList`] is one such list: members are stored with bids
//! *relative* to the shared adjustment variable, so ticking the adjustment
//! moves every member at once and the sorted order is preserved ("all
//! programs in the list adjust their bids by the same amount").
//! [`LogicalBids`] bundles the increment, decrement, and constant lists for
//! one keyword.
//!
//! This module lives in `ssa_core` (rather than `ssa_strategy`, which
//! re-exports it) because it is shared by two layers: the strategy crate's
//! `LogicalRoiPopulation` maintains whole ROI populations through these
//! lists, and the [`crate::marketplace`] facade routes its incremental bid
//! updates (`update_bid`, pause/resume) through a per-keyword
//! [`AdjustmentList`] instead of rebuilding bidder vectors.

use std::collections::{BTreeSet, HashMap};

/// Identifier of a bidding program within a population.
pub type ProgramId = usize;

/// Which of the three Section IV-B lists a program sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListKind {
    /// Bids grow by 1 per auction on this keyword.
    Increment,
    /// Bids shrink by 1 per auction on this keyword.
    Decrement,
    /// Bids do not change.
    Constant,
}

impl ListKind {
    /// Per-auction delta applied by [`LogicalBids::tick`].
    pub fn delta(self) -> i64 {
        match self {
            ListKind::Increment => 1,
            ListKind::Decrement => -1,
            ListKind::Constant => 0,
        }
    }
}

/// A bid list with a shared adjustment variable.
///
/// Effective bid of member `p` = stored bid of `p` + `adjustment`.
/// [`AdjustmentList::tick`] is `O(1)`; insertion and removal are
/// `O(log n)`.
#[derive(Debug, Clone, Default)]
pub struct AdjustmentList {
    adjustment: i64,
    // (stored bid, program) — ordered ascending; iterate backwards for the
    // descending bid order the top-k machinery wants.
    members: BTreeSet<(i64, ProgramId)>,
    stored: HashMap<ProgramId, i64>,
}

impl AdjustmentList {
    /// An empty list.
    pub fn new() -> Self {
        AdjustmentList::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the list has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Moves every member's effective bid by `delta` in `O(1)`.
    pub fn tick(&mut self, delta: i64) {
        if !self.members.is_empty() {
            self.adjustment += delta;
        }
    }

    /// Inserts a program with the given **effective** bid.
    pub fn insert(&mut self, program: ProgramId, effective_bid: i64) {
        let stored = effective_bid - self.adjustment;
        let fresh = self.stored.insert(program, stored).is_none();
        assert!(fresh, "program {program} already in list");
        self.members.insert((stored, program));
    }

    /// Removes a program, returning its effective bid.
    pub fn remove(&mut self, program: ProgramId) -> Option<i64> {
        let stored = self.stored.remove(&program)?;
        let removed = self.members.remove(&(stored, program));
        debug_assert!(removed, "list out of sync");
        Some(stored + self.adjustment)
    }

    /// Effective bid of a member.
    pub fn bid(&self, program: ProgramId) -> Option<i64> {
        self.stored.get(&program).map(|s| s + self.adjustment)
    }

    /// Members by descending effective bid (ties: descending id, matching
    /// the `BTreeSet` reverse order).
    pub fn iter_desc(&self) -> impl Iterator<Item = (ProgramId, i64)> + '_ {
        self.members
            .iter()
            .rev()
            .map(move |&(stored, p)| (p, stored + self.adjustment))
    }
}

/// The three per-keyword lists plus membership tracking.
#[derive(Debug, Clone, Default)]
pub struct LogicalBids {
    lists: [AdjustmentList; 3],
    kind_of: HashMap<ProgramId, ListKind>,
}

fn slot(kind: ListKind) -> usize {
    match kind {
        ListKind::Increment => 0,
        ListKind::Decrement => 1,
        ListKind::Constant => 2,
    }
}

impl LogicalBids {
    /// Empty structure.
    pub fn new() -> Self {
        LogicalBids::default()
    }

    /// Total number of programs across the three lists.
    pub fn len(&self) -> usize {
        self.kind_of.len()
    }

    /// `true` if no programs are registered.
    pub fn is_empty(&self) -> bool {
        self.kind_of.is_empty()
    }

    /// Registers a program with its current bid and direction.
    pub fn insert(&mut self, program: ProgramId, bid: i64, kind: ListKind) {
        let fresh = self.kind_of.insert(program, kind).is_none();
        assert!(fresh, "program {program} already registered");
        self.lists[slot(kind)].insert(program, bid);
    }

    /// Unregisters a program, returning `(bid, kind)`.
    pub fn remove(&mut self, program: ProgramId) -> Option<(i64, ListKind)> {
        let kind = self.kind_of.remove(&program)?;
        let bid = self.lists[slot(kind)]
            .remove(program)
            .expect("membership out of sync");
        Some((bid, kind))
    }

    /// Moves a program to another list, preserving its effective bid.
    pub fn migrate(&mut self, program: ProgramId, to: ListKind) {
        if self.kind_of.get(&program) == Some(&to) {
            return;
        }
        let (bid, _) = self.remove(program).expect("unknown program");
        self.insert(program, bid, to);
    }

    /// The single logical update for one auction: increment list +1,
    /// decrement list −1. `O(1)`.
    pub fn tick(&mut self) {
        self.lists[slot(ListKind::Increment)].tick(1);
        self.lists[slot(ListKind::Decrement)].tick(-1);
    }

    /// A program's current effective bid.
    pub fn bid(&self, program: ProgramId) -> Option<i64> {
        let kind = self.kind_of.get(&program)?;
        self.lists[slot(*kind)].bid(program)
    }

    /// A program's current list.
    pub fn kind(&self, program: ProgramId) -> Option<ListKind> {
        self.kind_of.get(&program).copied()
    }

    /// All programs by descending effective bid: a three-way merge of the
    /// per-list sorted orders.
    pub fn iter_desc(&self) -> impl Iterator<Item = (ProgramId, i64)> + '_ {
        ThreeWayMerge::new([
            Box::new(self.lists[0].iter_desc()) as Box<dyn Iterator<Item = (ProgramId, i64)>>,
            Box::new(self.lists[1].iter_desc()),
            Box::new(self.lists[2].iter_desc()),
        ])
    }
}

/// Descending merge of three descending (program, bid) streams.
struct ThreeWayMerge<'a> {
    iters: [Box<dyn Iterator<Item = (ProgramId, i64)> + 'a>; 3],
    heads: [Option<(ProgramId, i64)>; 3],
}

impl<'a> ThreeWayMerge<'a> {
    fn new(mut iters: [Box<dyn Iterator<Item = (ProgramId, i64)> + 'a>; 3]) -> Self {
        let heads = [iters[0].next(), iters[1].next(), iters[2].next()];
        ThreeWayMerge { iters, heads }
    }
}

impl Iterator for ThreeWayMerge<'_> {
    type Item = (ProgramId, i64);

    fn next(&mut self) -> Option<(ProgramId, i64)> {
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|(p, b)| (i, p, b)))
            .max_by_key(|&(_, p, b)| (b, p))?;
        let (idx, p, b) = best;
        self.heads[idx] = self.iters[idx].next();
        Some((p, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjustment_list_o1_tick() {
        let mut l = AdjustmentList::new();
        l.insert(0, 10);
        l.insert(1, 5);
        l.insert(2, 8);
        l.tick(3);
        assert_eq!(l.bid(0), Some(13));
        assert_eq!(l.bid(1), Some(8));
        let order: Vec<_> = l.iter_desc().collect();
        assert_eq!(order, vec![(0, 13), (2, 11), (1, 8)]);
        // Removal returns the effective bid.
        assert_eq!(l.remove(2), Some(11));
        assert_eq!(l.len(), 2);
        assert_eq!(l.remove(2), None);
    }

    #[test]
    fn insert_after_tick_respects_adjustment() {
        let mut l = AdjustmentList::new();
        l.insert(0, 10);
        l.tick(-4);
        l.insert(1, 9); // effective 9 now
        assert_eq!(l.bid(0), Some(6));
        assert_eq!(l.bid(1), Some(9));
        l.tick(-1);
        assert_eq!(l.bid(1), Some(8));
    }

    #[test]
    fn tick_on_empty_list_is_inert() {
        let mut l = AdjustmentList::new();
        l.tick(100);
        l.insert(0, 5);
        assert_eq!(l.bid(0), Some(5));
    }

    #[test]
    fn logical_bids_tick_and_migrate() {
        let mut lb = LogicalBids::new();
        lb.insert(0, 10, ListKind::Increment);
        lb.insert(1, 10, ListKind::Decrement);
        lb.insert(2, 10, ListKind::Constant);
        lb.tick();
        lb.tick();
        assert_eq!(lb.bid(0), Some(12));
        assert_eq!(lb.bid(1), Some(8));
        assert_eq!(lb.bid(2), Some(10));
        // Migrating to Constant freezes the effective bid.
        lb.migrate(1, ListKind::Constant);
        lb.tick();
        assert_eq!(lb.bid(1), Some(8));
        assert_eq!(lb.bid(0), Some(13));
        assert_eq!(lb.kind(1), Some(ListKind::Constant));
    }

    #[test]
    fn merged_iteration_is_globally_sorted() {
        let mut lb = LogicalBids::new();
        for (p, bid, kind) in [
            (0, 3, ListKind::Increment),
            (1, 9, ListKind::Increment),
            (2, 7, ListKind::Decrement),
            (3, 1, ListKind::Decrement),
            (4, 8, ListKind::Constant),
            (5, 5, ListKind::Constant),
        ] {
            lb.insert(p, bid, kind);
        }
        let bids: Vec<i64> = lb.iter_desc().map(|(_, b)| b).collect();
        let mut sorted = bids.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(bids, sorted);
        assert_eq!(lb.iter_desc().count(), 6);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_insert_rejected() {
        let mut lb = LogicalBids::new();
        lb.insert(0, 1, ListKind::Constant);
        lb.insert(0, 2, ListKind::Increment);
    }

    #[test]
    fn migrate_to_same_list_is_noop() {
        let mut lb = LogicalBids::new();
        lb.insert(0, 4, ListKind::Increment);
        lb.migrate(0, ListKind::Increment);
        assert_eq!(lb.bid(0), Some(4));
    }
}
