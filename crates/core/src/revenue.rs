//! Expected revenue: from multi-feature bids to a matching problem.
//!
//! This is the constructive half of Theorem 2. Every Boolean combination of
//! an advertiser's own `Slotj` / `Click` / `Purchase` predicates is a
//! 1-dependent event, so conditional on "advertiser `i` gets slot `j`" its
//! probability is fully determined by the click and purchase models: the
//! slot predicates become constants and only the four (click, purchase)
//! worlds remain. Summing value × probability over the rows of the Bids
//! table gives the edge weight `E[revenue | i in slot j]`.
//!
//! One subtlety the paper's proof handles with the `E ∧ (∧j ¬Slotj)` bids:
//! a formula may also pay when the advertiser is *not* shown (e.g. a brand
//! bid on `Slot1 ∨ ¬(Slot1 ∨ … ∨ Slotk)` — "top or nothing"). We therefore
//! normalise: the matching works on **adjusted weights**
//! `w(i,j) = E[rev | i in slot j] − v₀(i)` where `v₀(i)` is the revenue
//! from leaving `i` unplaced, and the total expected revenue of an
//! allocation is `Σᵢ v₀(i) + Σ_matched w(i,j)`. Negative adjusted weights
//! simply mean "better left unplaced", which the matching solvers honour by
//! leaving slots empty.

use crate::prob::{ClickModel, PurchaseModel};
use ssa_bidlang::{AdvertiserView, BidsTable, SlotId};
use ssa_matching::RevenueMatrix;

/// Expected revenue from assigning `slot` to advertiser `adv` under the
/// click/purchase models, assuming the advertiser pays what it bids.
pub fn expected_revenue(
    bids: &BidsTable,
    adv: usize,
    slot: SlotId,
    clicks: &ClickModel,
    purchases: &PurchaseModel,
) -> f64 {
    let p_click = clicks.p_click(adv, slot);
    let mut total = 0.0;
    for clicked in [false, true] {
        let p_c = if clicked { p_click } else { 1.0 - p_click };
        if p_c == 0.0 {
            continue;
        }
        let p_purchase = purchases.p_purchase(adv, slot, clicked);
        for purchased in [false, true] {
            let p = p_c
                * if purchased {
                    p_purchase
                } else {
                    1.0 - p_purchase
                };
            if p == 0.0 {
                continue;
            }
            let view = AdvertiserView {
                slot: Some(slot),
                clicked,
                purchased,
                heavy_pattern: None,
            };
            total += p * bids.payment(&view).as_f64();
        }
    }
    total
}

/// Revenue collected from an advertiser that is not displayed (its ad gets
/// no clicks and no purchases, but negated-slot formulas may still pay).
pub fn no_slot_revenue(bids: &BidsTable) -> f64 {
    bids.payment(&AdvertiserView::unplaced()).as_f64()
}

/// The per-advertiser unplaced revenues plus their sum; the constant part of
/// the winner-determination objective.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoSlotValues {
    /// `base[i]` = revenue if advertiser `i` is left unplaced.
    pub base: Vec<f64>,
    /// Sum of `base`.
    pub total_base: f64,
}

impl NoSlotValues {
    /// Rebuilds `total_base` by summing `base` in index order — the same
    /// order [`revenue_matrix_into`] sums in, so a partial refresh via
    /// [`revenue_matrix_refresh_row`] stays bit-identical to a full rebuild.
    pub fn resum(&mut self) {
        self.total_base = self.base.iter().sum();
    }
}

/// Builds the adjusted expected-revenue matrix for winner determination,
/// together with the no-slot normalisation values.
///
/// Total expected revenue of an assignment =
/// `no_slot.total_base + assignment.total_weight`.
pub fn revenue_matrix(
    bids: &[BidsTable],
    clicks: &ClickModel,
    purchases: &PurchaseModel,
) -> (RevenueMatrix, NoSlotValues) {
    let mut matrix = RevenueMatrix::zeros(0, clicks.num_slots().max(1));
    let mut no_slot = NoSlotValues::default();
    revenue_matrix_into(bids, clicks, purchases, &mut matrix, &mut no_slot);
    (matrix, no_slot)
}

/// In-place variant of [`revenue_matrix`]: reshapes and refills
/// caller-owned buffers, so the batched auction pipeline performs no
/// per-auction matrix (or base-vector) allocation after warm-up.
pub fn revenue_matrix_into(
    bids: &[BidsTable],
    clicks: &ClickModel,
    purchases: &PurchaseModel,
    matrix: &mut RevenueMatrix,
    no_slot: &mut NoSlotValues,
) {
    let n = bids.len();
    let k = clicks.num_slots();
    assert_eq!(clicks.num_advertisers(), n, "click model size mismatch");
    assert_eq!(
        purchases.num_advertisers(),
        n,
        "purchase model size mismatch"
    );
    no_slot.base.clear();
    no_slot.base.extend(bids.iter().map(no_slot_revenue));
    no_slot.total_base = no_slot.base.iter().sum();
    let base = &no_slot.base;
    // An advertiser whose table has no rows bids on nothing at all: it is
    // excluded from the matching outright rather than entered at weight 0,
    // where tie-breaking against empty slots could still display it (this
    // is how the `Marketplace` facade expresses paused campaigns without
    // rebuilding the engine).
    matrix.fill_from_fn(n, k, |i, j| {
        if bids[i].is_empty() {
            ssa_matching::EXCLUDED
        } else {
            expected_revenue(&bids[i], i, SlotId::from_index0(j), clicks, purchases) - base[i]
        }
    });
}

/// Recomputes one advertiser's matrix row and no-slot base value in place,
/// cell for cell exactly as [`revenue_matrix_into`] would. The warm-start
/// path in the auction engine calls this for each row whose bids changed
/// since the previous auction, then [`NoSlotValues::resum`] once, which
/// together reproduce a full rebuild bit for bit.
pub fn revenue_matrix_refresh_row(
    bids: &BidsTable,
    adv: usize,
    clicks: &ClickModel,
    purchases: &PurchaseModel,
    matrix: &mut RevenueMatrix,
    no_slot: &mut NoSlotValues,
) {
    let base = no_slot_revenue(bids);
    no_slot.base[adv] = base;
    for j in 0..matrix.num_slots() {
        let weight = if bids.is_empty() {
            ssa_matching::EXCLUDED
        } else {
            expected_revenue(bids, adv, SlotId::from_index0(j), clicks, purchases) - base
        };
        matrix.set(adv, j, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_bidlang::{Formula, Money};
    use ssa_matching::max_weight_assignment;

    fn uniform_models(n: usize, k: usize, p: f64) -> (ClickModel, PurchaseModel) {
        (
            ClickModel::from_fn(n, k, |_, _| p),
            PurchaseModel::never(n, k),
        )
    }

    #[test]
    fn single_feature_expected_revenue_is_p_times_bid() {
        let bids = BidsTable::single_feature(Money::from_cents(10));
        let clicks = ClickModel::from_rows(&[vec![0.3, 0.1]]);
        let purchases = PurchaseModel::never(1, 2);
        assert!(
            (expected_revenue(&bids, 0, SlotId::new(1), &clicks, &purchases) - 3.0).abs() < 1e-12
        );
        assert!(
            (expected_revenue(&bids, 0, SlotId::new(2), &clicks, &purchases) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn figure3_bids_with_purchases() {
        // Pay 5 on Purchase, 2 on Slot1∨Slot2 (slot events are certain given
        // the assignment).
        let bids = BidsTable::figure3();
        let clicks = ClickModel::from_rows(&[vec![0.5, 0.5, 0.5]]);
        let purchases = PurchaseModel::from_fn(1, 3, |_, _| (0.4, 0.0));
        // Slot 1: P(purchase) = 0.5·0.4 = 0.2 → 5·0.2 + 2 = 3.
        let r1 = expected_revenue(&bids, 0, SlotId::new(1), &clicks, &purchases);
        assert!((r1 - 3.0).abs() < 1e-12, "r1 = {r1}");
        // Slot 3: no slot bonus → 5·0.2 = 1.
        let r3 = expected_revenue(&bids, 0, SlotId::new(3), &clicks, &purchases);
        assert!((r3 - 1.0).abs() < 1e-12, "r3 = {r3}");
    }

    #[test]
    fn exhaustive_world_enumeration_agrees() {
        // Cross-check expected_revenue against a literal enumeration of the
        // four (click, purchase) worlds for an arbitrary formula.
        let bids = BidsTable::new(vec![
            (
                Formula::click() & !Formula::purchase() & Formula::slot(SlotId::new(2)),
                Money::from_cents(7),
            ),
            (Formula::purchase(), Money::from_cents(3)),
        ]);
        let clicks = ClickModel::from_rows(&[vec![0.25, 0.6]]);
        let purchases = PurchaseModel::from_fn(1, 2, |_, j| (0.5 / (j + 1) as f64, 0.125));
        for j in 1..=2u16 {
            let slot = SlotId::new(j);
            let pc = clicks.p_click(0, slot);
            let mut manual = 0.0;
            for clicked in [false, true] {
                for purchased in [false, true] {
                    let pp = purchases.p_purchase(0, slot, clicked);
                    let p = (if clicked { pc } else { 1.0 - pc })
                        * (if purchased { pp } else { 1.0 - pp });
                    let view = AdvertiserView {
                        slot: Some(slot),
                        clicked,
                        purchased,
                        heavy_pattern: None,
                    };
                    manual += p * bids.payment(&view).as_f64();
                }
            }
            let fast = expected_revenue(&bids, 0, slot, &clicks, &purchases);
            assert!((fast - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn top_or_nothing_bid_yields_negative_adjusted_weights() {
        // "topmost slot or not displayed at all": leaving the advertiser out
        // pays 4; slot 2 pays 0 → adjusted weight for slot 2 is −4.
        let k = 2;
        let bids = vec![BidsTable::new(vec![(
            Formula::slot(SlotId::new(1)) | Formula::no_slot(k),
            Money::from_cents(4),
        )])];
        let (clicks, purchases) = uniform_models(1, k as usize, 0.5);
        let (matrix, base) = revenue_matrix(&bids, &clicks, &purchases);
        assert_eq!(base.base, vec![4.0]);
        assert_eq!(matrix.get(0, 0), 0.0); // 4 (slot1) − 4 (base)
        assert_eq!(matrix.get(0, 1), -4.0); // 0 − 4
                                            // The matching must therefore leave this advertiser unplaced rather
                                            // than give it slot 2.
        let a = max_weight_assignment(&matrix);
        assert_eq!(a.slot_to_adv, vec![Some(0), None]);
        // …and total revenue = base + weight = 4 + 0.
        assert!((base.total_base + a.total_weight - 4.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_dimensions_and_values() {
        let bids = vec![
            BidsTable::single_feature(Money::from_cents(10)),
            BidsTable::single_feature(Money::from_cents(20)),
        ];
        let clicks = ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]]);
        let purchases = PurchaseModel::never(2, 2);
        let (matrix, base) = revenue_matrix(&bids, &clicks, &purchases);
        assert_eq!(matrix.num_advertisers(), 2);
        assert_eq!(matrix.num_slots(), 2);
        assert_eq!(base.total_base, 0.0);
        assert!((matrix.get(0, 0) - 8.0).abs() < 1e-12);
        assert!((matrix.get(1, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn in_place_refill_matches_owned_construction() {
        let (clicks, purchases) = uniform_models(2, 2, 0.4);
        let bids = vec![
            BidsTable::single_feature(Money::from_cents(10)),
            BidsTable::new(vec![(Formula::no_slot(2), Money::from_cents(3))]),
        ];
        let (owned_matrix, owned_base) = revenue_matrix(&bids, &clicks, &purchases);
        // Refill buffers previously sized for a different market.
        let mut matrix = RevenueMatrix::zeros(5, 3);
        let mut no_slot = NoSlotValues {
            base: vec![9.0; 5],
            total_base: 45.0,
        };
        revenue_matrix_into(&bids, &clicks, &purchases, &mut matrix, &mut no_slot);
        assert_eq!(matrix, owned_matrix);
        assert_eq!(no_slot, owned_base);
    }

    #[test]
    fn empty_table_is_excluded_from_the_matching() {
        let bids = vec![
            BidsTable::empty(),
            BidsTable::single_feature(Money::from_cents(1)),
        ];
        let (clicks, purchases) = uniform_models(2, 2, 0.5);
        let (matrix, base) = revenue_matrix(&bids, &clicks, &purchases);
        assert_eq!(matrix.get(0, 0), ssa_matching::EXCLUDED);
        assert_eq!(matrix.get(0, 1), ssa_matching::EXCLUDED);
        assert_eq!(base.base[0], 0.0);
        // The matching never seats the empty-table advertiser, even though
        // a zero-weight row could win tie-breaks against an empty slot.
        let a = max_weight_assignment(&matrix);
        assert_eq!(a.slot_to_adv.iter().filter(|s| **s == Some(0)).count(), 0);
    }

    #[test]
    fn row_refresh_matches_full_rebuild() {
        let (clicks, purchases) = uniform_models(3, 2, 0.4);
        let before = vec![
            BidsTable::single_feature(Money::from_cents(10)),
            BidsTable::single_feature(Money::from_cents(7)),
            BidsTable::new(vec![(Formula::no_slot(2), Money::from_cents(3))]),
        ];
        let (mut matrix, mut no_slot) = revenue_matrix(&before, &clicks, &purchases);
        // Change rows 1 (new bid) and 2 (paused: empty table) only.
        let mut after = before.clone();
        after[1] = BidsTable::single_feature(Money::from_cents(55));
        after[2] = BidsTable::empty();
        for adv in [1usize, 2] {
            revenue_matrix_refresh_row(
                &after[adv],
                adv,
                &clicks,
                &purchases,
                &mut matrix,
                &mut no_slot,
            );
        }
        no_slot.resum();
        let (full_matrix, full_base) = revenue_matrix(&after, &clicks, &purchases);
        assert_eq!(matrix, full_matrix);
        assert_eq!(no_slot, full_base);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn model_size_checked() {
        let bids = vec![BidsTable::empty()];
        let (clicks, purchases) = uniform_models(2, 2, 0.5);
        let _ = revenue_matrix(&bids, &clicks, &purchases);
    }
}
