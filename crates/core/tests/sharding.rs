//! Shard-invariance: on random marketplaces and random mixed-keyword
//! query streams, a [`ShardedMarketplace`] must produce **identical**
//! winner sets, clicks, and charges for every shard count — all equal to
//! the unsharded [`Marketplace`] running in keyword-local RNG mode on the
//! same seeded stream. This is the executable form of the sharded layer's
//! equivalence guarantee (see `ssa_core::sharded`'s module docs): sharding
//! is an execution strategy, not a semantic one.

use proptest::prelude::*;
use ssa_bidlang::Money;
use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use ssa_core::{MarketplaceBuilder, WdMethod};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A random marketplace population plus a random query stream.
#[derive(Debug, Clone)]
struct Scenario {
    num_keywords: usize,
    num_slots: usize,
    seed: u64,
    method: WdMethod,
    /// `(advertiser, keyword, bid cents)` campaign registrations.
    campaigns: Vec<(usize, usize, i64)>,
    /// Keyword per query, in stream order.
    stream: Vec<usize>,
    /// `(campaign index, new bid cents)` incremental updates applied
    /// between the two halves of the stream.
    updates: Vec<(usize, i64)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=9, 1usize..=3, 0u64..10_000, 0usize..4).prop_map(
        |(num_keywords, num_slots, seed, method_idx)| {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            let method = [
                WdMethod::Lp,
                WdMethod::Hungarian,
                WdMethod::Reduced,
                WdMethod::ReducedParallel(2),
            ][method_idx];
            let num_advertisers = 1 + next(4) as usize;
            let mut campaigns = Vec::new();
            for adv in 0..num_advertisers {
                for kw in 0..num_keywords {
                    // Roughly two thirds of (advertiser, keyword) pairs
                    // open a campaign; some keywords stay empty.
                    if next(3) > 0 {
                        campaigns.push((adv, kw, next(60) as i64));
                    }
                }
            }
            let stream: Vec<usize> = (0..next(120) as usize)
                .map(|_| next(num_keywords as u64) as usize)
                .collect();
            let updates: Vec<(usize, i64)> = if campaigns.is_empty() {
                Vec::new()
            } else {
                (0..next(5) as usize)
                    .map(|_| (next(campaigns.len() as u64) as usize, next(80) as i64))
                    .collect()
            };
            Scenario {
                num_keywords,
                num_slots,
                seed,
                method,
                campaigns,
                stream,
                updates,
            }
        },
    )
}

fn builder(s: &Scenario) -> MarketplaceBuilder {
    Marketplace::builder()
        .slots(s.num_slots)
        .keywords(s.num_keywords)
        .seed(s.seed)
        .method(s.method)
        .default_click_probs((0..s.num_slots).map(|j| 0.8 / (j + 1) as f64).collect())
        .default_purchase_probs(
            (0..s.num_slots)
                .map(|j| (0.2 / (j + 1) as f64, 0.0))
                .collect(),
        )
}

/// Populates a market through the closure-based control plane so the same
/// code drives both `Marketplace` and `ShardedMarketplace`.
macro_rules! populate {
    ($market:expr, $s:expr) => {{
        let mut handles = Vec::new();
        for adv in 0..4 {
            handles.push($market.register_advertiser(format!("adv-{adv}")));
        }
        let mut ids = Vec::new();
        for &(adv, kw, cents) in &$s.campaigns {
            ids.push(
                $market
                    .add_campaign(
                        handles[adv],
                        kw,
                        CampaignSpec::per_click(Money::from_cents(cents)),
                    )
                    .expect("campaign accepted"),
            );
        }
        ids
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `serve_batch` aggregates (auctions, filled slots, clicks,
    /// purchases, realised charges, expected revenue — totals and per
    /// keyword) are bit-identical across shard counts 1, 2, 4, 7 and the
    /// unsharded keyword-local marketplace, including across incremental
    /// bid updates between batches.
    #[test]
    fn serve_batch_is_shard_invariant(s in arb_scenario()) {
        let mid = s.stream.len() / 2;
        let first: Vec<QueryRequest> = s.stream[..mid].iter().map(|&k| QueryRequest::new(k)).collect();
        let second: Vec<QueryRequest> = s.stream[mid..].iter().map(|&k| QueryRequest::new(k)).collect();

        // Reference: the unsharded marketplace in keyword-local RNG mode.
        let mut reference = builder(&s).keyword_local_rng(true).build().expect("valid");
        let ref_ids = populate!(reference, s);
        let want_a = reference.serve_batch(&first).expect("in range");
        for &(c, cents) in &s.updates {
            reference.update_bid(ref_ids[c], Money::from_cents(cents)).expect("per-click");
        }
        let want_b = reference.serve_batch(&second).expect("in range");

        for shards in SHARD_COUNTS {
            let mut market = builder(&s).build_sharded(shards).expect("valid");
            let ids = populate!(market, s);
            prop_assert_eq!(&ids, &ref_ids, "shards={}", shards);
            let got_a = market.serve_batch(&first).expect("in range");
            prop_assert_eq!(&got_a, &want_a, "first half, shards={}", shards);
            for &(c, cents) in &s.updates {
                market.update_bid(ids[c], Money::from_cents(cents)).expect("per-click");
            }
            let got_b = market.serve_batch(&second).expect("in range");
            prop_assert_eq!(&got_b, &want_b, "second half, shards={}", shards);
            prop_assert_eq!(market.now(), reference.now(), "shards={}", shards);
        }
    }

    /// Query-by-query serving agrees too: the full typed
    /// [`AuctionResponse`] — winner set (campaign per slot), click and
    /// purchase flags, and every charge — is identical at every stream
    /// position for every shard count.
    #[test]
    fn per_query_winners_clicks_and_charges_are_shard_invariant(s in arb_scenario()) {
        let mut reference = builder(&s).keyword_local_rng(true).build().expect("valid");
        populate!(reference, s);
        let want: Vec<_> = s
            .stream
            .iter()
            .map(|&k| reference.serve(QueryRequest::new(k)).expect("in range"))
            .collect();
        for shards in SHARD_COUNTS {
            let mut market = builder(&s).build_sharded(shards).expect("valid");
            populate!(market, s);
            for (t, &k) in s.stream.iter().enumerate() {
                let got = market.serve(QueryRequest::new(k)).expect("in range");
                prop_assert_eq!(&got, &want[t], "shards={} t={}", shards, t);
            }
        }
    }
}
