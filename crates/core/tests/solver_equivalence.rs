//! Cross-method equivalence: on random workloads, all four [`WdSolver`]
//! implementations (LP / H / RH / RH-parallel) must produce assignments
//! with equal expected revenue (within LP tolerance), valid structure, and
//! self-consistent bookkeeping — and a *reused* solver must keep agreeing
//! auction after auction, which is what the batched pipeline relies on.

use proptest::prelude::*;
use ssa_bidlang::{BidsTable, Formula, Money, SlotId};
use ssa_core::prob::{ClickModel, PurchaseModel};
use ssa_core::revenue::revenue_matrix;
use ssa_core::WdMethod;
use ssa_matching::{Assignment, WdSolver};

/// A random Section II-style market: per-click bidders mixed with brand
/// ("slot 1 or nothing") bidders, random click/purchase probabilities.
fn arb_market() -> impl Strategy<Value = (Vec<BidsTable>, ClickModel, PurchaseModel)> {
    (1usize..=12, 1usize..=5, 0u64..1000).prop_map(|(n, k, seed)| {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let bids: Vec<BidsTable> = (0..n)
            .map(|i| {
                let cents = 1 + (next() * 60.0) as i64;
                if i % 4 == 3 {
                    // Brand bid: top slot or not displayed at all.
                    BidsTable::new(vec![(
                        Formula::slot(SlotId::new(1)) | Formula::no_slot(k as u16),
                        Money::from_cents(cents),
                    )])
                } else {
                    BidsTable::single_feature(Money::from_cents(cents))
                }
            })
            .collect();
        let clicks = ClickModel::from_fn(n, k, |_, _| 0.05 + 0.9 * next());
        let purchases = PurchaseModel::from_fn(n, k, |_, _| (0.4 * next(), 0.05 * next()));
        (bids, clicks, purchases)
    })
}

const METHODS: [WdMethod; 4] = [
    WdMethod::Lp,
    WdMethod::Hungarian,
    WdMethod::Reduced,
    WdMethod::ReducedParallel(2),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four solver implementations agree on the winner-determination
    /// objective (expected revenue) of a random market.
    #[test]
    fn all_wd_solvers_agree_on_expected_revenue(
        (bids, clicks, purchases) in arb_market(),
    ) {
        let (matrix, base) = revenue_matrix(&bids, &clicks, &purchases);
        let mut reference: Option<f64> = None;
        for method in METHODS {
            let mut solver = method.new_solver();
            let assignment = solver.solve_alloc(&matrix);
            prop_assert!(assignment.is_valid(matrix.num_advertisers()));
            // Solver bookkeeping matches a recomputation from the matrix.
            prop_assert!(
                (assignment.weight_in(&matrix) - assignment.total_weight).abs() < 1e-6,
                "{}: weight bookkeeping drifted", solver.name()
            );
            let revenue = base.total_base + assignment.total_weight;
            match reference {
                None => reference = Some(revenue),
                Some(r) => prop_assert!(
                    (revenue - r).abs() < 1e-6,
                    "{} disagrees: {} vs {}", solver.name(), revenue, r
                ),
            }
        }
    }

    /// A persistent solver fed a stream of different markets produces the
    /// same result as a fresh solver per market (scratch reuse is sound).
    #[test]
    fn reused_solvers_match_fresh_solvers(
        markets in proptest::collection::vec(arb_market(), 2..5),
    ) {
        for method in METHODS {
            let mut reused = method.new_solver();
            let mut out = Assignment::default();
            for (bids, clicks, purchases) in &markets {
                let (matrix, _) = revenue_matrix(bids, clicks, purchases);
                reused.solve(&matrix, &mut out);
                let fresh = method.new_solver().solve_alloc(&matrix);
                prop_assert!(
                    (out.total_weight - fresh.total_weight).abs() < 1e-6,
                    "{}: reused {} vs fresh {}",
                    reused.name(), out.total_weight, fresh.total_weight
                );
            }
        }
    }
}
