//! Pruning- and warm-start-invariance: top-k pruned winner determination
//! ([`EngineConfig::pruned`]) and warm-started assignments
//! ([`EngineConfig::warm_start`]) are **execution strategies, not semantic
//! ones** — on random marketplaces and query streams they must produce
//! bit-identical winner sets, clicks, and charges to the full cold solve,
//! for every [`WdMethod`], sharded and unsharded, across incremental bid
//! updates.
//!
//! Why pruning is exact: the pruned solver keeps every advertiser whose
//! weight ties the per-slot top-k floor, so any advertiser it drops is
//! *strictly* below k better advertisers in every slot and appears in no
//! optimal assignment; candidate reindexing is monotone, so each inner
//! solver's deterministic tie-breaking is preserved. Why warm starts are
//! exact: solvers are deterministic and draw no randomness, so when no
//! bids table changed since the engine's previous auction the previous
//! assignment *is* the solution.
//!
//! [`EngineConfig::pruned`]: ssa_core::EngineConfig
//! [`EngineConfig::warm_start`]: ssa_core::EngineConfig

use proptest::prelude::*;
use ssa_bidlang::Money;
use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use ssa_core::{MarketplaceBuilder, WdMethod};

const SHARD_COUNTS: [usize; 2] = [1, 4];

const METHODS: [WdMethod; 4] = [
    WdMethod::Lp,
    WdMethod::Hungarian,
    WdMethod::Reduced,
    WdMethod::ReducedParallel(2),
];

/// A random marketplace population plus a random query stream (the
/// `sharding.rs` scenario, reused for the pruning/warm-start axes).
#[derive(Debug, Clone)]
struct Scenario {
    num_keywords: usize,
    num_slots: usize,
    seed: u64,
    method: WdMethod,
    /// `(advertiser, keyword, bid cents)` campaign registrations.
    campaigns: Vec<(usize, usize, i64)>,
    /// Keyword per query, in stream order.
    stream: Vec<usize>,
    /// `(campaign index, new bid cents)` incremental updates applied
    /// between the two halves of the stream — these dirty exactly one
    /// bidder's row, the warm-start refresh's interesting case.
    updates: Vec<(usize, i64)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=9, 1usize..=3, 0u64..10_000, 0usize..4).prop_map(
        |(num_keywords, num_slots, seed, method_idx)| {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            let method = METHODS[method_idx];
            let num_advertisers = 1 + next(8) as usize;
            let mut campaigns = Vec::new();
            for adv in 0..num_advertisers {
                for kw in 0..num_keywords {
                    if next(3) > 0 {
                        // Bids from a narrow range so per-slot top-k floors
                        // are often tied — the pruning edge case that must
                        // keep every tied advertiser.
                        campaigns.push((adv, kw, next(8) as i64));
                    }
                }
            }
            let stream: Vec<usize> = (0..next(60) as usize)
                .map(|_| next(num_keywords as u64) as usize)
                .collect();
            let updates: Vec<(usize, i64)> = if campaigns.is_empty() {
                Vec::new()
            } else {
                (0..next(5) as usize)
                    .map(|_| (next(campaigns.len() as u64) as usize, next(80) as i64))
                    .collect()
            };
            Scenario {
                num_keywords,
                num_slots,
                seed,
                method,
                campaigns,
                stream,
                updates,
            }
        },
    )
}

fn builder(s: &Scenario) -> MarketplaceBuilder {
    Marketplace::builder()
        .slots(s.num_slots)
        .keywords(s.num_keywords)
        .seed(s.seed)
        .method(s.method)
        .keyword_local_rng(true)
        .default_click_probs((0..s.num_slots).map(|j| 0.8 / (j + 1) as f64).collect())
        .default_purchase_probs(
            (0..s.num_slots)
                .map(|j| (0.2 / (j + 1) as f64, 0.0))
                .collect(),
        )
}

/// Populates a market through the closure-based control plane so the same
/// code drives both `Marketplace` and `ShardedMarketplace`.
macro_rules! populate {
    ($market:expr, $s:expr) => {{
        let mut handles = Vec::new();
        for adv in 0..9 {
            handles.push($market.register_advertiser(format!("adv-{adv}")));
        }
        let mut ids = Vec::new();
        for &(adv, kw, cents) in &$s.campaigns {
            ids.push(
                $market
                    .add_campaign(
                        handles[adv],
                        kw,
                        CampaignSpec::per_click(Money::from_cents(cents)),
                    )
                    .expect("campaign accepted"),
            );
        }
        ids
    }};
}

/// Runs the scenario's split stream (updates in the middle) and returns
/// both halves' aggregate reports plus every per-query response.
macro_rules! run_scenario {
    ($market:expr, $s:expr, $ids:expr) => {{
        let mid = $s.stream.len() / 2;
        let first: Vec<QueryRequest> = $s.stream[..mid]
            .iter()
            .map(|&k| QueryRequest::new(k))
            .collect();
        let a = $market.serve_batch(&first).expect("in range");
        for &(c, cents) in &$s.updates {
            $market
                .update_bid($ids[c], Money::from_cents(cents))
                .expect("per-click");
        }
        let responses: Vec<_> = $s.stream[mid..]
            .iter()
            .map(|&k| $market.serve(QueryRequest::new(k)).expect("in range"))
            .collect();
        (a, responses)
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Top-k pruned winner determination is bit-identical to the full
    /// solve — aggregates, per-query winners, clicks, and charges — for
    /// every method, across incremental bid updates, sharded at 1 and 4
    /// shards and unsharded.
    #[test]
    fn pruned_serving_is_bit_identical(s in arb_scenario()) {
        let mut reference = builder(&s).pruned(false).build().expect("valid");
        let ref_ids = populate!(reference, s);
        let (want_a, want_rs) = run_scenario!(reference, s, ref_ids);

        let mut pruned = builder(&s).pruned(true).build().expect("valid");
        let ids = populate!(pruned, s);
        let (got_a, got_rs) = run_scenario!(pruned, s, ids);
        prop_assert_eq!(&got_a, &want_a, "unsharded batch halves");
        prop_assert_eq!(&got_rs, &want_rs, "unsharded per-query");

        for shards in SHARD_COUNTS {
            let mut market = builder(&s).pruned(true).build_sharded(shards).expect("valid");
            let ids = populate!(market, s);
            let (got_a, got_rs) = run_scenario!(market, s, ids);
            prop_assert_eq!(&got_a, &want_a, "shards={}", shards);
            prop_assert_eq!(&got_rs, &want_rs, "shards={}", shards);
        }
    }

    /// Warm-started serving (diff the bids, refresh dirty rows, skip the
    /// solve when nothing changed) is bit-identical to cold serving
    /// (rebuild and resolve every auction) across bid-update sequences —
    /// with and without pruning stacked on top.
    #[test]
    fn warm_start_matches_cold_start(s in arb_scenario()) {
        let mut cold = builder(&s).warm_start(false).build().expect("valid");
        let cold_ids = populate!(cold, s);
        let (want_a, want_rs) = run_scenario!(cold, s, cold_ids);

        let mut warm = builder(&s).warm_start(true).build().expect("valid");
        let ids = populate!(warm, s);
        let (got_a, got_rs) = run_scenario!(warm, s, ids);
        prop_assert_eq!(&got_a, &want_a, "warm batch halves");
        prop_assert_eq!(&got_rs, &want_rs, "warm per-query");

        let mut both = builder(&s).warm_start(true).pruned(true).build().expect("valid");
        let ids = populate!(both, s);
        let (got_a, got_rs) = run_scenario!(both, s, ids);
        prop_assert_eq!(&got_a, &want_a, "warm+pruned batch halves");
        prop_assert_eq!(&got_rs, &want_rs, "warm+pruned per-query");
    }
}

/// Deterministic sweep at the issue's advertiser counts: n ∈ {5, 50, 500},
/// all four methods, pruned+warm versus unpruned cold through `serve` and
/// `serve_batch`, and the pruned run's phase stats must show the solver
/// saw fewer candidates than n once n clears the per-slot floor size.
#[test]
fn pruned_warm_matches_unpruned_cold_at_issue_sizes() {
    for n in [5usize, 50, 500] {
        for method in METHODS {
            let slots = 3;
            let build = |pruned: bool, warm: bool| {
                let mut market = Marketplace::builder()
                    .slots(slots)
                    .keywords(2)
                    .seed(0xF1F0 + n as u64)
                    .method(method)
                    .keyword_local_rng(true)
                    .pruned(pruned)
                    .warm_start(warm)
                    .default_click_probs((0..slots).map(|j| 0.7 / (j + 1) as f64).collect())
                    .build()
                    .expect("valid");
                let mut state = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut next = move |m: u64| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % m
                };
                let mut ids = Vec::new();
                for adv in 0..n {
                    let handle = market.register_advertiser(format!("adv-{adv}"));
                    // Advertiser-specific click curves keep weight rows
                    // generically distinct (the realistic population), so
                    // the duplicate-row tie fallback stays out of the way
                    // and pruning actually engages.
                    let shape = 0.3 + 0.6 * (adv + 1) as f64 / (n + 1) as f64;
                    let probs: Vec<f64> = (0..slots).map(|j| shape / (j + 1) as f64).collect();
                    for kw in 0..2 {
                        ids.push(
                            market
                                .add_campaign(
                                    handle,
                                    kw,
                                    CampaignSpec::per_click(Money::from_cents(1 + next(40) as i64))
                                        .click_probs(probs.clone()),
                                )
                                .expect("campaign accepted"),
                        );
                    }
                }
                (market, ids)
            };
            let (mut cold, cold_ids) = build(false, false);
            let (mut fast, fast_ids) = build(true, true);
            let stream: Vec<QueryRequest> = (0..10).map(|i| QueryRequest::new(i % 2)).collect();
            let want_a = cold.serve_batch(&stream).expect("in range");
            let got_a = fast.serve_batch(&stream).expect("in range");
            assert_eq!(got_a, want_a, "n={n} method={method} first batch");
            // Dirty one row, then serve again: the warm path must refresh
            // exactly that row and still agree with the cold rebuild.
            cold.update_bid(cold_ids[0], Money::from_cents(55))
                .expect("per-click");
            fast.update_bid(fast_ids[0], Money::from_cents(55))
                .expect("per-click");
            let want_b = cold.serve_batch(&stream).expect("in range");
            let got_b = fast.serve_batch(&stream).expect("in range");
            assert_eq!(got_b, want_b, "n={n} method={method} after update");
            let phases = got_b.total.phases;
            if n >= 50 {
                assert!(
                    phases.solves == 0 || phases.avg_candidates() < n as f64,
                    "n={n} method={method}: pruning never engaged: {phases:?}"
                );
            }
            if n >= 50 && method == WdMethod::Reduced {
                assert!(
                    phases.warm_solves > 0,
                    "n={n}: repeated identical queries never warm-started: {phases:?}"
                );
            }
        }
    }
}
