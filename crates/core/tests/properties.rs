//! Property tests for the engine crate: heavyweight exactness, pricing
//! invariants, and revenue-matrix structure.

use proptest::prelude::*;
use ssa_bidlang::{BidsTable, Formula, HeavyPattern, Money, SlotId};
use ssa_core::heavyweight::{
    brute_force_heavyweight, solve_heavyweight, HeavyweightInstance, PatternClickModel,
};
use ssa_core::pricing::{gsp_prices, vcg_prices};
use ssa_core::prob::{ClickModel, PurchaseModel};
use ssa_core::revenue::revenue_matrix;
use ssa_matching::{max_weight_assignment, RevenueMatrix};

fn arb_heavyweight_instance() -> impl Strategy<Value = HeavyweightInstance> {
    (2usize..=5, 1usize..=3).prop_flat_map(|(n, k)| {
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(1i64..60, n),
            proptest::collection::vec(0.05f64..0.9, n * k * (1 << k)),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(is_heavy, values, probs, wants_heavy_bid)| {
                let clicks = PatternClickModel::from_fn(n, k, |adv, slot, pattern| {
                    probs[adv * k * (1 << k) + slot * (1 << k) + pattern.0 as usize]
                });
                let bids: Vec<BidsTable> = (0..n)
                    .map(|i| {
                        let mut t = BidsTable::single_feature(Money::from_cents(values[i]));
                        if wants_heavy_bid[i] {
                            // A pattern-sensitive clause: extra value if
                            // slot 1 is NOT heavyweight.
                            t.push(
                                Formula::slot(SlotId::new(1))
                                    & !Formula::heavy_in_slot(SlotId::new(1)),
                                Money::from_cents(values[i] / 2 + 1),
                            );
                        }
                        t
                    })
                    .collect();
                HeavyweightInstance {
                    is_heavy,
                    clicks,
                    purchases: PurchaseModel::never(n, k),
                    bids,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Section III-F: the 2^k pattern decomposition is exactly optimal, and
    /// the reported pattern is consistent with the allocation it returns.
    #[test]
    fn heavyweight_solver_exact(instance in arb_heavyweight_instance()) {
        let fast = solve_heavyweight(&instance, 1);
        let slow = brute_force_heavyweight(&instance);
        prop_assert!(
            (fast.expected_revenue - slow.expected_revenue).abs() < 1e-9,
            "fast {} brute {}", fast.expected_revenue, slow.expected_revenue
        );
        // Threaded agrees with sequential.
        let par = solve_heavyweight(&instance, 3);
        prop_assert!((par.expected_revenue - fast.expected_revenue).abs() < 1e-12);
        // Pattern consistency.
        let k = instance.clicks.num_slots();
        let derived = HeavyPattern::from_slots((0..k).filter_map(|j| {
            fast.slot_to_adv[j]
                .filter(|&a| instance.is_heavy[a])
                .map(|_| SlotId::from_index0(j))
        }));
        prop_assert_eq!(derived, fast.pattern);
    }

    /// GSP invariants on arbitrary matrices: prices are non-negative, only
    /// winners are charged, and no winner pays more than its own per-click
    /// equivalent.
    #[test]
    fn gsp_invariants(
        cells in proptest::collection::vec(0.0f64..100.0, 1..36),
        k in 1usize..5,
    ) {
        let n = cells.len().div_ceil(k).max(1);
        let matrix = RevenueMatrix::from_fn(n, k, |i, j| {
            cells.get(i * k + j).copied().unwrap_or(0.0)
        });
        let assignment = max_weight_assignment(&matrix);
        let p = |_: usize, j: usize| 0.9 / (j + 1) as f64;
        let prices = gsp_prices(&matrix, &assignment, &p);
        let winners: Vec<usize> = assignment.slot_to_adv.iter().flatten().copied().collect();
        for sp in &prices {
            prop_assert!(sp.amount >= 0.0);
            prop_assert!(winners.contains(&sp.winner));
            let own_equiv = matrix.get(sp.winner, sp.slot).max(0.0) / p(sp.winner, sp.slot);
            prop_assert!(sp.amount <= own_equiv + 1e-9);
        }
    }

    /// VCG invariants: individual rationality (payment ≤ own contribution)
    /// and non-negativity.
    #[test]
    fn vcg_invariants(
        cells in proptest::collection::vec(0.0f64..100.0, 1..30),
        k in 1usize..4,
    ) {
        let n = cells.len().div_ceil(k).max(1);
        let matrix = RevenueMatrix::from_fn(n, k, |i, j| {
            cells.get(i * k + j).copied().unwrap_or(0.0)
        });
        let assignment = max_weight_assignment(&matrix);
        for sp in vcg_prices(&matrix, &assignment) {
            prop_assert!(sp.amount >= -1e-9);
            prop_assert!(sp.amount <= matrix.get(sp.winner, sp.slot) + 1e-9);
        }
    }

    /// Revenue-matrix structure: single-feature tables yield weights
    /// p_click × bid with zero no-slot base, and the weights are monotone in
    /// the click probabilities.
    #[test]
    fn revenue_matrix_single_feature_structure(
        bids_cents in proptest::collection::vec(0i64..80, 1..8),
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let n = bids_cents.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clicks = ClickModel::from_fn(n, k, |_, _| rng.gen_range(0.0..1.0));
        let purchases = PurchaseModel::never(n, k);
        let tables: Vec<BidsTable> = bids_cents
            .iter()
            .map(|&c| BidsTable::single_feature(Money::from_cents(c)))
            .collect();
        let (matrix, base) = revenue_matrix(&tables, &clicks, &purchases);
        prop_assert_eq!(base.total_base, 0.0);
        for (i, &cents) in bids_cents.iter().enumerate() {
            for j in 0..k {
                let expect = clicks.p_click(i, SlotId::from_index0(j)) * cents as f64;
                prop_assert!((matrix.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }
}
