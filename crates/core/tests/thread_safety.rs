//! Compile-time thread-safety assertions.
//!
//! The sharded serving layer moves whole per-shard marketplaces — engines,
//! boxed solvers, campaign programs, RNGs — onto scoped worker threads, so
//! these types must stay `Send`. Asserting the bounds here means a future
//! non-thread-safe field (an `Rc`, a `RefCell` handed across campaigns, a
//! raw pointer in solver scratch) fails `cargo test` at compile time
//! instead of surfacing as a trait-bound error deep inside shard
//! integration.

use ssa_core::marketplace::{AuctionResponse, CampaignSpec, MarketBatchReport, Marketplace};
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::{AuctionEngine, BatchReport, SqlProgramBidder, TableBidder};
use ssa_matching::{HungarianSolver, ParallelReducedSolver, ReducedSolver, WdSolver};
use ssa_simplex::NetworkSimplexSolver;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn marketplaces_are_send() {
    assert_send::<Marketplace>();
    assert_send::<ShardedMarketplace>();
    assert_send::<AuctionEngine<TableBidder>>();
    // Campaign specs (and thus their boxed programs) move into the
    // marketplace, which must remain Send afterwards.
    assert_send::<CampaignSpec>();
    // SQL bidding programs carry a whole embedded database (tables,
    // trigger ASTs, prepared plans, formula cache) — all of it must
    // migrate to shard workers with the campaign.
    assert_send::<SqlProgramBidder>();
    assert_send::<ssa_minidb::Database>();
    assert_send::<ssa_minidb::Prepared>();
    assert_sync::<ssa_minidb::Prepared>();
}

#[test]
fn every_wd_solver_is_send() {
    assert_send::<HungarianSolver>();
    assert_send::<ReducedSolver>();
    assert_send::<ParallelReducedSolver>();
    assert_send::<NetworkSimplexSolver>();
    // The trait-object form engines actually hold: `WdSolver: Send` is a
    // supertrait bound, so the box is Send without an explicit `+ Send`.
    assert_send::<Box<dyn WdSolver>>();
}

#[test]
fn reports_are_send_and_sync() {
    // Reports cross the shard merge boundary by value and may be shared
    // read-only by monitoring threads.
    assert_send::<BatchReport>();
    assert_sync::<BatchReport>();
    assert_send::<MarketBatchReport>();
    assert_sync::<MarketBatchReport>();
    assert_send::<AuctionResponse>();
    assert_sync::<AuctionResponse>();
}
