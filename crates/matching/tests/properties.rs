//! Property-based tests for the winner-determination algorithms.

use proptest::prelude::*;
use ssa_matching::exhaustive::brute_force_assignment;
use ssa_matching::parallel::{threaded_reduced_assignment, threaded_top_k, tree_top_k};
use ssa_matching::threshold::{threshold_top_k, IndexedSource, MaintainedIndex};
use ssa_matching::{
    max_weight_assignment, reduced_assignment, top_k_indices, RevenueMatrix, EXCLUDED,
};

/// A small matrix with optional excluded entries.
fn arb_matrix(max_n: usize, max_k: usize) -> impl Strategy<Value = RevenueMatrix> {
    (1..=max_n, 1..=max_k).prop_flat_map(|(n, k)| {
        proptest::collection::vec(
            prop_oneof![
                4 => (0u32..10_000).prop_map(|v| v as f64 / 10.0),
                1 => Just(EXCLUDED),
            ],
            n * k,
        )
        .prop_map(move |cells| RevenueMatrix::from_fn(n, k, |i, j| cells[i * k + j]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 2 machinery: the Hungarian solver is exactly optimal.
    #[test]
    fn hungarian_is_optimal(m in arb_matrix(7, 4)) {
        let fast = max_weight_assignment(&m);
        let brute = brute_force_assignment(&m);
        prop_assert!((fast.total_weight - brute.total_weight).abs() < 1e-9,
            "hungarian={} brute={}", fast.total_weight, brute.total_weight);
        prop_assert!(fast.is_valid(m.num_advertisers()));
        prop_assert!((fast.weight_in(&m) - fast.total_weight).abs() < 1e-9);
    }

    /// Section III-E: the reduced-graph method loses nothing.
    #[test]
    fn reduction_preserves_optimum(m in arb_matrix(16, 4)) {
        let full = max_weight_assignment(&m);
        let reduced = reduced_assignment(&m);
        prop_assert!(
            (full.total_weight - reduced.assignment.total_weight).abs() < 1e-9
        );
        let k = m.num_slots();
        prop_assert!(reduced.candidates.len() <= k * k);
        prop_assert!(reduced.assignment.is_valid(m.num_advertisers()));
    }

    /// The tree-network simulation and the threaded implementation agree
    /// with the direct heap-based top-k selection.
    #[test]
    fn aggregation_variants_agree(m in arb_matrix(24, 3), threads in 1usize..6) {
        let k = m.num_slots();
        let direct = top_k_indices(&m, k);
        let (tree, stats) = tree_top_k(&m, k);
        prop_assert_eq!(&tree, &direct);
        let n = m.num_advertisers();
        let expected_depth = if n <= 1 { 0 } else { (usize::BITS - (n - 1).leading_zeros()) as usize };
        prop_assert_eq!(stats.depth, expected_depth);
        let threaded = threaded_top_k(&m, k, threads);
        prop_assert_eq!(&threaded, &direct);
        let par = threaded_reduced_assignment(&m, threads);
        let seq = reduced_assignment(&m);
        prop_assert!((par.assignment.total_weight - seq.assignment.total_weight).abs() < 1e-12);
    }

    /// TA returns exactly the full-scan top-k for monotone aggregations
    /// (weighted sum and product of non-negative parameters).
    #[test]
    fn threshold_algorithm_exact(
        lists in (1usize..=3, 1usize..=30).prop_flat_map(|(m, n)| {
            proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, n),
                m,
            )
        }),
        k in 1usize..6,
        use_product in any::<bool>(),
    ) {
        let idx: Vec<MaintainedIndex> =
            lists.iter().map(|l| MaintainedIndex::new(l.clone())).collect();
        let source = IndexedSource::new(idx.iter().collect());
        type Agg = Box<dyn Fn(&[f64]) -> f64>;
        let agg: Agg = if use_product {
            Box::new(|v: &[f64]| v.iter().product())
        } else {
            Box::new(|v: &[f64]| v.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x).sum())
        };
        let (got, instr) = threshold_top_k(&source, &agg, k);

        // Reference by full scan.
        let n = lists[0].len();
        let mut scored: Vec<(usize, f64)> = (0..n).map(|o| {
            let vals: Vec<f64> = lists.iter().map(|l| l[o]).collect();
            (o, agg(&vals))
        }).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);

        // Scores must agree exactly; ids may differ only among ties.
        prop_assert_eq!(got.len(), scored.len());
        for (g, s) in got.iter().zip(&scored) {
            prop_assert!((g.1 - s.1).abs() < 1e-9, "got {:?} want {:?}", got, scored);
        }
        prop_assert!(instr.sorted_accesses <= lists.len() * n);
    }

    /// Index updates keep the TA consistent with a fresh full scan.
    #[test]
    fn maintained_index_consistent_under_updates(
        initial in proptest::collection::vec(0.0f64..50.0, 3..20),
        updates in proptest::collection::vec((0usize..19, 0.0f64..50.0), 0..12),
    ) {
        let n = initial.len();
        let mut idx = MaintainedIndex::new(initial.clone());
        let mut shadow = initial;
        for (obj, val) in updates {
            let obj = obj % n;
            idx.update(obj, val);
            shadow[obj] = val;
        }
        let from_index: Vec<(usize, f64)> = idx.iter_desc().collect();
        let mut expected: Vec<(usize, f64)> =
            shadow.iter().copied().enumerate().collect();
        expected.sort_by(|a, b| b.1.total_cmp(&a.1).then(b.0.cmp(&a.0)));
        prop_assert_eq!(from_index.len(), expected.len());
        for (a, b) in from_index.iter().zip(&expected) {
            prop_assert!((a.1 - b.1).abs() == 0.0);
        }
    }
}
