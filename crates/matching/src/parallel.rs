//! Parallel top-k aggregation (Section III-E).
//!
//! The paper proposes `k` binary-tree networks of height `O(log n)`: leaf
//! `i` of tree `j` holds the expected revenue of advertiser `i` in slot `j`,
//! internal nodes merge the top-k lists of their children in `O(k)`, and the
//! roots feed the union into the Hungarian algorithm. Total parallel time
//! `O(k log n + k⁵)`.
//!
//! Two implementations are provided:
//!
//! * [`tree_top_k`] — a sequential *simulation* of the tree networks that
//!   also reports the tree depth and number of combine steps, so tests can
//!   check the `O(log n)` claim;
//! * [`threaded_top_k`] / [`threaded_reduced_assignment`] — a real
//!   multi-threaded version ("we can mix sequential processing with parallel
//!   processing by running more than one program sequentially on each
//!   machine, computing the top k bids, and then aggregating").

use crate::hungarian::{max_weight_assignment, HungarianSolver};
use crate::matrix::{Assignment, RevenueMatrix};
use crate::reduced::ReducedSolution;
use crate::solver::WdSolver;
use crate::topk::TopK;

/// Statistics from a simulated tree-network aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Height of the binary tree (number of merge levels).
    pub depth: usize,
    /// Total number of pairwise combine operations across all levels of one
    /// tree (the work one tree performs; each level runs in parallel).
    pub combine_steps: usize,
}

/// Merges two descending top-k lists into one, keeping the k best.
fn merge_top_k(a: &[(usize, f64)], b: &[(usize, f64)], k: usize) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(k.min(a.len() + b.len()));
    let (mut ia, mut ib) = (0, 0);
    while out.len() < k && (ia < a.len() || ib < b.len()) {
        let take_a = match (a.get(ia), b.get(ib)) {
            (Some(&(aid, aw)), Some(&(bid, bw))) => {
                (aw, std::cmp::Reverse(aid)) >= (bw, std::cmp::Reverse(bid))
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_a {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out
}

/// Simulates the `j`-th binary-tree network for every slot `j`, returning
/// each slot's top-k list plus tree statistics.
///
/// Functionally identical to [`crate::topk::top_k_indices`]; the value of
/// this function is the faithful simulation of the paper's aggregation
/// topology (used by tests and the ablation benches).
pub fn tree_top_k(matrix: &RevenueMatrix, k: usize) -> (Vec<Vec<(usize, f64)>>, TreeStats) {
    let slots = matrix.num_slots();
    let n = matrix.num_advertisers();
    let mut results = Vec::with_capacity(slots);
    let mut stats = TreeStats {
        depth: 0,
        combine_steps: 0,
    };
    for slot in 0..slots {
        // Leaves: singleton lists, excluded edges become empty lists.
        let mut level: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let w = matrix.get(i, slot);
                if w == crate::matrix::EXCLUDED {
                    Vec::new()
                } else {
                    vec![(i, w)]
                }
            })
            .collect();
        let mut depth = 0;
        while level.len() > 1 {
            depth += 1;
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.chunks(2);
            for pair in &mut iter {
                match pair {
                    [a, b] => {
                        stats.combine_steps += 1;
                        next.push(merge_top_k(a, b, k));
                    }
                    [a] => next.push(a.clone()),
                    _ => unreachable!(),
                }
            }
            level = next;
        }
        stats.depth = stats.depth.max(depth);
        results.push(level.pop().unwrap_or_default());
    }
    (results, stats)
}

/// Multi-threaded top-k per slot: advertisers are split into `threads`
/// chunks, each chunk computes local per-slot top-k heaps, and the partial
/// results are merged. This realises the paper's mixed
/// sequential/parallel scheme with `p` machines:
/// `O((n/p) k log k + k log p)`.
pub fn threaded_top_k(matrix: &RevenueMatrix, k: usize, threads: usize) -> Vec<Vec<(usize, f64)>> {
    let n = matrix.num_advertisers();
    let slots = matrix.num_slots();
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads);

    let partials: Vec<Vec<Vec<(usize, f64)>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            let matrix_ref = &matrix;
            handles.push(scope.spawn(move || {
                let mut collectors: Vec<TopK> = (0..slots).map(|_| TopK::new(k)).collect();
                for (slot, collector) in collectors.iter_mut().enumerate() {
                    for (adv, &w) in matrix_ref.column(slot)[lo..hi].iter().enumerate() {
                        collector.offer(lo + adv, w);
                    }
                }
                collectors
                    .into_iter()
                    .map(TopK::into_sorted_desc)
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("top-k worker panicked"))
            .collect()
    });

    // Root merge: fold the partial lists per slot.
    (0..slots)
        .map(|slot| {
            partials
                .iter()
                .map(|p| p[slot].as_slice())
                .fold(Vec::new(), |acc, list| merge_top_k(&acc, list, k))
        })
        .collect()
}

/// Method **RH** with threaded top-k aggregation as a reusable
/// [`WdSolver`]: the candidate list, reduced sub-matrix, and inner
/// Hungarian scratch persist across calls. The per-thread partial heaps are
/// still allocated inside each scoped worker (they live on other threads),
/// so this solver trades a little allocation for wall-clock parallelism on
/// large `n` — exactly the paper's mixed sequential/parallel scheme.
#[derive(Debug, Clone)]
pub struct ParallelReducedSolver {
    threads: usize,
    candidates: Vec<usize>,
    sub: RevenueMatrix,
    sub_out: Assignment,
    inner: HungarianSolver,
}

impl ParallelReducedSolver {
    /// Creates a solver that fans the selection pass out over `threads`
    /// workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        ParallelReducedSolver {
            threads: threads.max(1),
            candidates: Vec::new(),
            sub: RevenueMatrix::zeros(0, 1),
            sub_out: Assignment::default(),
            inner: HungarianSolver::new(),
        }
    }

    /// Number of selection workers.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl WdSolver for ParallelReducedSolver {
    fn name(&self) -> &'static str {
        "reduced-parallel"
    }

    fn solve(&mut self, matrix: &RevenueMatrix, out: &mut Assignment) {
        let k = matrix.num_slots();
        let per_slot = threaded_top_k(matrix, k, self.threads);
        self.candidates.clear();
        self.candidates
            .extend(per_slot.into_iter().flatten().map(|(id, _)| id));
        self.candidates.sort_unstable();
        self.candidates.dedup();
        matrix.restrict_advertisers_into(&self.candidates, &mut self.sub);
        self.inner.solve(&self.sub, &mut self.sub_out);
        out.reset(k);
        out.total_weight = self.sub_out.total_weight;
        for (j, local) in self.sub_out.slot_to_adv.iter().enumerate() {
            out.slot_to_adv[j] = local.map(|l| self.candidates[l]);
        }
    }

    fn last_candidates(&self) -> Option<usize> {
        Some(self.candidates.len())
    }
}

/// The fully parallel winner determination of Section III-E: threaded
/// per-slot top-k, candidate union, Hungarian on the reduced graph.
/// One-shot convenience over [`ParallelReducedSolver`].
pub fn threaded_reduced_assignment(matrix: &RevenueMatrix, threads: usize) -> ReducedSolution {
    let k = matrix.num_slots();
    let per_slot = threaded_top_k(matrix, k, threads);
    let mut candidates: Vec<usize> = per_slot.into_iter().flatten().map(|(id, _)| id).collect();
    candidates.sort_unstable();
    candidates.dedup();
    let sub = matrix.restrict_advertisers(&candidates);
    let sub_assignment = max_weight_assignment(&sub);
    ReducedSolution {
        assignment: Assignment {
            slot_to_adv: sub_assignment
                .slot_to_adv
                .iter()
                .map(|o| o.map(|local| candidates[local]))
                .collect(),
            total_weight: sub_assignment.total_weight,
        },
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduced::reduced_assignment;
    use crate::topk::top_k_indices;

    fn pseudorandom_matrix(n: usize, k: usize, seed: u64) -> RevenueMatrix {
        let mut state = seed | 1;
        RevenueMatrix::from_fn(n, k, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 100.0
        })
    }

    #[test]
    fn merge_keeps_order_and_bound() {
        let a = vec![(0, 9.0), (2, 5.0)];
        let b = vec![(1, 7.0), (3, 5.0)];
        let m = merge_top_k(&a, &b, 3);
        assert_eq!(m, vec![(0, 9.0), (1, 7.0), (2, 5.0)]);
    }

    #[test]
    fn merge_tie_breaks_by_id() {
        let a = vec![(5, 4.0)];
        let b = vec![(1, 4.0)];
        assert_eq!(merge_top_k(&a, &b, 2), vec![(1, 4.0), (5, 4.0)]);
    }

    #[test]
    fn tree_matches_direct_top_k() {
        let m = pseudorandom_matrix(67, 4, 42);
        let (tree, stats) = tree_top_k(&m, 4);
        let direct = top_k_indices(&m, 4);
        assert_eq!(tree, direct);
        // Height of a 67-leaf binary tree: ceil(log2 67) = 7.
        assert_eq!(stats.depth, 7);
        // A binary reduction performs exactly n - 1... minus skipped odd
        // nodes; at minimum n/2 combines, at most n - 1, per slot.
        assert!(stats.combine_steps >= 33 * 4);
        assert!(stats.combine_steps <= 66 * 4);
    }

    #[test]
    fn threaded_matches_direct_top_k() {
        let m = pseudorandom_matrix(101, 3, 7);
        for threads in [1, 2, 4, 16, 200] {
            let got = threaded_top_k(&m, 3, threads);
            assert_eq!(got, top_k_indices(&m, 3), "threads={threads}");
        }
    }

    #[test]
    fn threaded_reduced_equals_sequential_reduced() {
        let m = pseudorandom_matrix(64, 5, 99);
        let seq = reduced_assignment(&m);
        let par = threaded_reduced_assignment(&m, 4);
        assert_eq!(par.assignment.total_weight, seq.assignment.total_weight);
        assert_eq!(par.candidates, seq.candidates);
    }

    #[test]
    fn parallel_solver_matches_one_shot() {
        let mut solver = ParallelReducedSolver::new(3);
        assert_eq!(solver.threads(), 3);
        let mut out = Assignment::empty(1);
        for (n, k, seed) in [(40, 4, 1u64), (9, 2, 2), (40, 4, 3)] {
            let m = pseudorandom_matrix(n, k, seed);
            solver.solve(&m, &mut out);
            let one_shot = threaded_reduced_assignment(&m, 3);
            assert_eq!(out, one_shot.assignment, "n={n} k={k}");
        }
    }

    #[test]
    fn single_advertiser_tree() {
        let m = pseudorandom_matrix(1, 2, 3);
        let (tree, stats) = tree_top_k(&m, 2);
        assert_eq!(tree[0].len(), 1);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn empty_market_threaded() {
        let m = RevenueMatrix::zeros(0, 2);
        let got = threaded_top_k(&m, 2, 4);
        assert_eq!(got, vec![Vec::new(), Vec::new()]);
    }
}
