//! The expected-revenue matrix and assignment types shared by all winner
//! determination methods.

use std::fmt;

/// Sentinel weight marking an advertiser–slot pair that must never be
/// matched (e.g. the advertiser's bid forbids the slot, or the adjusted
/// weight after no-slot normalisation is negative).
pub const EXCLUDED: f64 = f64::NEG_INFINITY;

/// Dense `n × k` matrix of expected revenues: `get(i, j)` is the expected
/// revenue from assigning slot `j` (zero-based) to advertiser `i`.
///
/// This is the paper's Figure 9 "revenue matrix". Entries are finite floats
/// or [`EXCLUDED`]; NaN and `+∞` are rejected at insertion.
///
/// Storage is slot-major (`data[slot * n + adv]`): the solvers' inner loops
/// — the Jonker–Volgenant cost scan, top-k column collection, and the
/// pruning pass — all walk *one slot across every advertiser*, so keeping a
/// slot's weights contiguous turns those scans into linear slice walks (see
/// [`RevenueMatrix::column`]). Logical indexing everywhere else stays
/// `(advertiser, slot)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueMatrix {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl RevenueMatrix {
    /// Creates an all-zero matrix for `n` advertisers and `k` slots.
    pub fn zeros(n: usize, k: usize) -> Self {
        assert!(k > 0, "at least one slot is required");
        RevenueMatrix {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Builds a matrix from a function of `(advertiser, slot)` indexes.
    pub fn from_fn(n: usize, k: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = RevenueMatrix::zeros(n, k);
        for i in 0..n {
            for j in 0..k {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds a matrix from row slices (`rows[i][j]` = advertiser `i`,
    /// slot `j`).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let k = rows.first().map(|r| r.len()).unwrap_or(1).max(1);
        let mut m = RevenueMatrix::zeros(n, k);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), k, "ragged revenue matrix");
            for (j, &w) in row.iter().enumerate() {
                m.set(i, j, w);
            }
        }
        m
    }

    /// Number of advertisers (rows).
    #[inline]
    pub fn num_advertisers(&self) -> usize {
        self.n
    }

    /// Number of slots (columns).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// The weight of assigning slot `j` to advertiser `i`.
    #[inline]
    pub fn get(&self, adv: usize, slot: usize) -> f64 {
        self.data[slot * self.n + adv]
    }

    /// Sets a weight.
    ///
    /// # Panics
    ///
    /// Panics if the weight is NaN or `+∞` (only finite values and
    /// [`EXCLUDED`] are meaningful revenues).
    #[inline]
    pub fn set(&mut self, adv: usize, slot: usize, weight: f64) {
        assert!(
            weight.is_finite() || weight == EXCLUDED,
            "revenue weights must be finite or EXCLUDED, got {weight}"
        );
        self.data[slot * self.n + adv] = weight;
    }

    /// Iterates `(advertiser, slot, weight)` over all entries, advertiser-
    /// major (the historical row-major order — the network-simplex arc
    /// builder depends on it for deterministic arc numbering).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| (0..self.k).map(move |j| (i, j, self.get(i, j))))
    }

    /// The contiguous column of weights for one slot, indexed by advertiser.
    #[inline]
    pub fn column(&self, slot: usize) -> &[f64] {
        &self.data[slot * self.n..(slot + 1) * self.n]
    }

    /// Reshapes the matrix to `n × k` in place, reusing the existing
    /// allocation when its capacity suffices, and refills every entry from
    /// `f`. This is the zero-realloc counterpart of [`RevenueMatrix::from_fn`]
    /// used by the batched auction pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or if `f` produces NaN / `+∞`.
    pub fn fill_from_fn(&mut self, n: usize, k: usize, mut f: impl FnMut(usize, usize) -> f64) {
        assert!(k > 0, "at least one slot is required");
        self.n = n;
        self.k = k;
        self.data.clear();
        self.data.resize(n * k, 0.0);
        // `f` is still called advertiser-major (i outer, j inner) so that
        // stateful closures observe the same call order as `from_fn`.
        for i in 0..n {
            for j in 0..k {
                let weight = f(i, j);
                assert!(
                    weight.is_finite() || weight == EXCLUDED,
                    "revenue weights must be finite or EXCLUDED, got {weight}"
                );
                self.data[j * n + i] = weight;
            }
        }
    }

    /// Extracts the sub-matrix restricted to the given advertisers (in the
    /// given order). Used by the reduced-graph method.
    pub fn restrict_advertisers(&self, advertisers: &[usize]) -> RevenueMatrix {
        let mut m = RevenueMatrix::zeros(advertisers.len(), self.k);
        self.restrict_advertisers_into(advertisers, &mut m);
        m
    }

    /// In-place variant of [`RevenueMatrix::restrict_advertisers`]: reshapes
    /// `out` and fills it with the selected rows without allocating (beyond
    /// growing `out`'s capacity on first use).
    pub fn restrict_advertisers_into(&self, advertisers: &[usize], out: &mut RevenueMatrix) {
        out.fill_from_fn(advertisers.len(), self.k, |new_i, j| {
            self.get(advertisers[new_i], j)
        });
    }
}

impl fmt::Display for RevenueMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.k {
                let w = self.get(i, j);
                if w == EXCLUDED {
                    write!(f, "{:>8}", "×")?;
                } else {
                    write!(f, "{w:>8.2}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A slot-to-advertiser assignment together with its total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `slot_to_adv[j]` is the advertiser assigned to slot `j`, if any.
    pub slot_to_adv: Vec<Option<usize>>,
    /// Sum of matrix weights over assigned pairs.
    pub total_weight: f64,
}

impl Default for Assignment {
    /// An empty assignment over zero slots; allocates nothing, so scratch
    /// buffers can be `std::mem::take`n and restored for free.
    fn default() -> Self {
        Assignment {
            slot_to_adv: Vec::new(),
            total_weight: 0.0,
        }
    }
}

impl Assignment {
    /// An empty assignment over `k` slots.
    pub fn empty(k: usize) -> Self {
        Assignment {
            slot_to_adv: vec![None; k],
            total_weight: 0.0,
        }
    }

    /// Clears the assignment and resizes it to `k` slots in place, reusing
    /// the existing allocation. Solvers call this before writing a result.
    pub fn reset(&mut self, k: usize) {
        self.slot_to_adv.clear();
        self.slot_to_adv.resize(k, None);
        self.total_weight = 0.0;
    }

    /// Inverts into an advertiser-to-slot map over `n` advertisers.
    pub fn adv_to_slot(&self, n: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n];
        for (j, adv) in self.slot_to_adv.iter().enumerate() {
            if let Some(i) = adv {
                debug_assert!(out[*i].is_none(), "advertiser in two slots");
                out[*i] = Some(j);
            }
        }
        out
    }

    /// Number of filled slots.
    pub fn num_assigned(&self) -> usize {
        self.slot_to_adv.iter().flatten().count()
    }

    /// Recomputes the total weight from a matrix; used to cross-check
    /// solver bookkeeping in tests.
    pub fn weight_in(&self, matrix: &RevenueMatrix) -> f64 {
        self.slot_to_adv
            .iter()
            .enumerate()
            .filter_map(|(j, adv)| adv.map(|i| matrix.get(i, j)))
            .sum()
    }

    /// Checks structural validity: each advertiser at most once, indices in
    /// range.
    pub fn is_valid(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for adv in self.slot_to_adv.iter().flatten() {
            if *adv >= n || seen[*adv] {
                return false;
            }
            seen[*adv] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = RevenueMatrix::from_rows(&[vec![9.0, 5.0], vec![8.0, 7.0]]);
        assert_eq!(m.num_advertisers(), 2);
        assert_eq!(m.num_slots(), 2);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.column(0), &[9.0, 8.0]);
        assert_eq!(m.column(1), &[5.0, 7.0]);
        assert_eq!(m.iter().count(), 4);
        // `iter` yields advertiser-major order regardless of storage layout.
        let order: Vec<(usize, usize)> = m.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn from_fn_matches_manual() {
        let m = RevenueMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(2, 1), 21.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let mut m = RevenueMatrix::zeros(1, 1);
        m.set(0, 0, f64::NAN);
    }

    #[test]
    fn excluded_allowed_and_displayed() {
        let mut m = RevenueMatrix::zeros(1, 2);
        m.set(0, 0, EXCLUDED);
        assert_eq!(m.get(0, 0), EXCLUDED);
        assert!(m.to_string().contains('×'));
    }

    #[test]
    fn restriction() {
        let m = RevenueMatrix::from_rows(&[vec![9.0, 5.0], vec![8.0, 7.0], vec![7.0, 6.0]]);
        let r = m.restrict_advertisers(&[2, 0]);
        assert_eq!(r.num_advertisers(), 2);
        assert_eq!(r.get(0, 0), 7.0);
        assert_eq!(r.get(1, 1), 5.0);
    }

    #[test]
    fn assignment_helpers() {
        let a = Assignment {
            slot_to_adv: vec![Some(2), None, Some(0)],
            total_weight: 0.0,
        };
        assert_eq!(a.num_assigned(), 2);
        assert_eq!(a.adv_to_slot(3), vec![Some(2), None, Some(0)]);
        assert!(a.is_valid(3));
        let bad = Assignment {
            slot_to_adv: vec![Some(1), Some(1)],
            total_weight: 0.0,
        };
        assert!(!bad.is_valid(2));
    }

    #[test]
    fn fill_from_fn_reshapes_without_losing_validation() {
        let mut m = RevenueMatrix::zeros(1, 1);
        m.fill_from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.num_advertisers(), 3);
        assert_eq!(m.num_slots(), 2);
        assert_eq!(m.get(2, 1), 21.0);
        // Shrinking reuses the allocation.
        let cap_before = m.data.capacity();
        m.fill_from_fn(2, 2, |_, _| 1.0);
        assert_eq!(m.data.capacity(), cap_before);
        assert_eq!(m.num_advertisers(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn fill_from_fn_rejects_nan() {
        let mut m = RevenueMatrix::zeros(1, 1);
        m.fill_from_fn(1, 1, |_, _| f64::NAN);
    }

    #[test]
    fn restrict_into_matches_owned_restrict() {
        let m = RevenueMatrix::from_rows(&[vec![9.0, 5.0], vec![8.0, 7.0], vec![7.0, 6.0]]);
        let owned = m.restrict_advertisers(&[2, 0]);
        let mut out = RevenueMatrix::zeros(0, 1);
        m.restrict_advertisers_into(&[2, 0], &mut out);
        assert_eq!(out, owned);
    }

    #[test]
    fn assignment_reset_reuses_buffer() {
        let mut a = Assignment {
            slot_to_adv: vec![Some(2), None, Some(0)],
            total_weight: 9.0,
        };
        a.reset(2);
        assert_eq!(a.slot_to_adv, vec![None, None]);
        assert_eq!(a.total_weight, 0.0);
        assert_eq!(Assignment::default().slot_to_adv.capacity(), 0);
    }

    #[test]
    fn weight_recompute() {
        let m = RevenueMatrix::from_rows(&[vec![9.0, 5.0], vec![8.0, 7.0]]);
        let a = Assignment {
            slot_to_adv: vec![Some(0), Some(1)],
            total_weight: 16.0,
        };
        assert_eq!(a.weight_in(&m), 16.0);
    }
}
