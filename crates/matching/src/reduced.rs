//! The reduced-graph winner determination method **RH** (Section III-E).
//!
//! For each slot, only the advertisers producing the top-k expected revenues
//! in that slot can participate in *some* maximum matching: "if a maximum
//! matching in the original problem assigned a slot to an advertiser who was
//! not in the top k highest bidders for that slot, we can simply reassign
//! that slot to one of these top k bidders who is not assigned any slot"
//! (the paper's exchange argument). The union of the per-slot top-k sets has
//! at most `k²` advertisers, so running the Hungarian algorithm on the
//! reduced bipartite graph costs `O(k⁵)` after an `O(n k log k)` selection
//! pass — linear in the number of advertisers.

use crate::hungarian::HungarianSolver;
use crate::matrix::{Assignment, RevenueMatrix};
use crate::solver::WdSolver;
use crate::topk::{top_k_indices, TopK};

/// Output of the reduced-graph method: the assignment plus the candidate set
/// that survived the reduction (the paper's Figure 11 sub-graph).
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedSolution {
    /// The optimal assignment, expressed in **original** advertiser ids.
    pub assignment: Assignment,
    /// Sorted original ids of the advertisers kept by the reduction.
    pub candidates: Vec<usize>,
}

/// Computes the candidate set: the union over slots of the per-slot top-k
/// advertisers (k = number of slots), sorted ascending.
pub fn reduced_candidates(matrix: &RevenueMatrix) -> Vec<usize> {
    let k = matrix.num_slots();
    let per_slot = top_k_indices(matrix, k);
    let mut candidates: Vec<usize> = per_slot.into_iter().flatten().map(|(id, _)| id).collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Method **RH** as a reusable [`WdSolver`]: the per-slot top-k heaps, the
/// candidate list, the reduced sub-matrix, and the inner Hungarian solver's
/// scratch all persist across calls, so a stream of same-sized auctions
/// performs no allocation after warm-up.
#[derive(Debug, Clone)]
pub struct ReducedSolver {
    collectors: Vec<TopK>,
    candidates: Vec<usize>,
    sub: RevenueMatrix,
    sub_out: Assignment,
    inner: HungarianSolver,
}

impl Default for ReducedSolver {
    fn default() -> Self {
        ReducedSolver::new()
    }
}

impl ReducedSolver {
    /// Creates a solver with empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        ReducedSolver {
            collectors: Vec::new(),
            candidates: Vec::new(),
            sub: RevenueMatrix::zeros(0, 1),
            sub_out: Assignment::default(),
            inner: HungarianSolver::new(),
        }
    }

    /// The candidate set computed by the most recent [`WdSolver::solve`]
    /// call (sorted ascending original advertiser ids).
    pub fn candidates(&self) -> &[usize] {
        &self.candidates
    }
}

impl WdSolver for ReducedSolver {
    fn name(&self) -> &'static str {
        "reduced"
    }

    fn solve(&mut self, matrix: &RevenueMatrix, out: &mut Assignment) {
        let k = matrix.num_slots();

        // Per-slot top-k selection into persistent heaps.
        if self.collectors.len() != k {
            self.collectors.resize_with(k, || TopK::new(k));
        }
        for c in &mut self.collectors {
            c.reset(k);
        }
        for (slot, collector) in self.collectors.iter_mut().enumerate() {
            for (adv, &w) in matrix.column(slot).iter().enumerate() {
                collector.offer(adv, w);
            }
        }

        // Candidate union, sorted so the sub-matrix row order (and hence
        // tie-breaking) matches `reduced_candidates`.
        self.candidates.clear();
        for c in &mut self.collectors {
            c.drain_ids_into(&mut self.candidates);
        }
        self.candidates.sort_unstable();
        self.candidates.dedup();

        // Hungarian on the reduced graph, then map back to original ids.
        matrix.restrict_advertisers_into(&self.candidates, &mut self.sub);
        self.inner.solve(&self.sub, &mut self.sub_out);
        out.reset(k);
        out.total_weight = self.sub_out.total_weight;
        for (j, local) in self.sub_out.slot_to_adv.iter().enumerate() {
            out.slot_to_adv[j] = local.map(|l| self.candidates[l]);
        }
    }

    fn last_candidates(&self) -> Option<usize> {
        Some(self.candidates.len())
    }
}

/// Winner determination via the reduced bipartite graph (method RH).
///
/// Produces exactly the same total weight as running
/// [`max_weight_assignment`](crate::max_weight_assignment) on the full
/// matrix, in
/// `O(n k log k + k⁵)` instead of `O(k² n)`. One-shot convenience over
/// [`ReducedSolver`]; construct the solver directly to amortise scratch
/// allocation across auctions.
///
/// ```
/// use ssa_matching::{reduced_assignment, max_weight_assignment, RevenueMatrix};
/// let m = RevenueMatrix::from_rows(&[
///     vec![9.0, 5.0],
///     vec![8.0, 7.0],
///     vec![7.0, 6.0],
///     vec![7.0, 4.0],
/// ]);
/// let fast = reduced_assignment(&m);
/// let full = max_weight_assignment(&m);
/// assert_eq!(fast.assignment.total_weight, full.total_weight);
/// // Figure 11: Sketchers (id 3) is pruned away.
/// assert_eq!(fast.candidates, vec![0, 1, 2]);
/// ```
pub fn reduced_assignment(matrix: &RevenueMatrix) -> ReducedSolution {
    let mut solver = ReducedSolver::new();
    let assignment = solver.solve_alloc(matrix);
    ReducedSolution {
        assignment,
        candidates: std::mem::take(&mut solver.candidates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::brute_force_assignment;
    use crate::matrix::EXCLUDED;

    #[test]
    fn figure_9_10_11_walkthrough() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0], // Nike
            vec![8.0, 7.0], // Adidas
            vec![7.0, 6.0], // Reebok
            vec![7.0, 4.0], // Sketchers
        ]);
        let sol = reduced_assignment(&m);
        // Figure 11 keeps Nike, Adidas, Reebok; the paper's bold edges are
        // slot1→{Nike, Adidas} and slot2→{Adidas, Reebok}.
        assert_eq!(sol.candidates, vec![0, 1, 2]);
        assert_eq!(sol.assignment.slot_to_adv, vec![Some(0), Some(1)]);
        assert_eq!(sol.assignment.total_weight, 16.0);
    }

    #[test]
    fn optimum_preserved_on_pseudorandom_instances() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 500) as f64 / 7.0
        };
        for n in [1usize, 3, 6, 9] {
            for k in [1usize, 2, 4] {
                let m = RevenueMatrix::from_fn(n, k, |_, _| next());
                let reduced = reduced_assignment(&m);
                let brute = brute_force_assignment(&m);
                assert!(
                    (reduced.assignment.total_weight - brute.total_weight).abs() < 1e-9,
                    "n={n} k={k}"
                );
                assert!(reduced.candidates.len() <= k * k);
            }
        }
    }

    #[test]
    fn reused_solver_matches_one_shot_and_tracks_candidates() {
        let mut solver = ReducedSolver::new();
        let mut out = Assignment::empty(1);
        let mut state = 0x5151u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 700) as f64 / 3.0
        };
        for (n, k) in [(8, 2), (3, 4), (12, 3), (0, 2), (8, 2)] {
            let m = RevenueMatrix::from_fn(n, k, |_, _| next());
            solver.solve(&m, &mut out);
            let one_shot = reduced_assignment(&m);
            assert_eq!(out, one_shot.assignment, "n={n} k={k}");
            assert_eq!(solver.candidates(), one_shot.candidates, "n={n} k={k}");
            assert_eq!(solver.candidates(), reduced_candidates(&m));
        }
    }

    #[test]
    fn candidate_bound_is_k_squared() {
        // Adversarial: every slot has a disjoint set of top bidders.
        let k = 3;
        let n = 30;
        let m = RevenueMatrix::from_fn(n, k, |i, j| {
            if i / 10 == j {
                1000.0 - (i % 10) as f64
            } else {
                (i % 10) as f64 / 100.0
            }
        });
        let candidates = reduced_candidates(&m);
        assert!(candidates.len() <= k * k);
        // Each slot's top-3 comes from its own block of ten advertisers.
        assert!(candidates.contains(&0) && candidates.contains(&10) && candidates.contains(&20));
    }

    #[test]
    fn excluded_edges_do_not_enter_candidates() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED], vec![EXCLUDED], vec![1.0]]);
        let sol = reduced_assignment(&m);
        assert_eq!(sol.candidates, vec![2]);
        assert_eq!(sol.assignment.slot_to_adv, vec![Some(2)]);
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 2);
        let sol = reduced_assignment(&m);
        assert!(sol.candidates.is_empty());
        assert_eq!(sol.assignment.slot_to_adv, vec![None, None]);
    }
}
