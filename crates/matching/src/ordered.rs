//! A totally-ordered, finite `f64` wrapper for use as heap and B-tree keys.

use std::cmp::Ordering;
use std::fmt;

/// A finite `f64` with a total order (`Ord`), usable as a key in
/// `BinaryHeap` and `BTreeMap`.
///
/// # Panics
///
/// [`OrderedF64::new`] panics on NaN; infinities are allowed so that the
/// [`crate::EXCLUDED`] sentinel can flow through heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a non-NaN float.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN is not an ordered value");
        OrderedF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        let a = OrderedF64::new(1.0);
        let b = OrderedF64::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b).get(), 2.0);
        assert!(OrderedF64::new(f64::NEG_INFINITY) < a);
        assert!(OrderedF64::new(f64::INFINITY) > b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = OrderedF64::new(f64::NAN);
    }

    #[test]
    fn works_as_btree_key() {
        use std::collections::BTreeSet;
        let set: BTreeSet<OrderedF64> = [3.0, 1.0, 2.0].into_iter().map(OrderedF64::new).collect();
        let sorted: Vec<f64> = set.into_iter().map(OrderedF64::get).collect();
        assert_eq!(sorted, vec![1.0, 2.0, 3.0]);
    }
}
