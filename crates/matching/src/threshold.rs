//! The threshold algorithm of Fagin, Lotem & Naor, as used in Section IV-A.
//!
//! Setting: each advertiser's bid for a slot is a **monotone** function
//! `f(x₁, …, x_m)` of per-advertiser parameters, and for every parameter we
//! maintain a list of advertisers sorted by that parameter. The threshold
//! algorithm (TA) finds the top-k advertisers by aggregate score while
//! reading only a prefix of each sorted list — it is *instance optimal*
//! among algorithms that avoid wild guesses.
//!
//! The driver [`threshold_top_k`] works over any [`TaSource`];
//! [`MaintainedIndex`] is the incrementally-updatable sorted list
//! (`O(log n)` repositioning) the engine uses to keep the lists current when
//! winning programs change their parameters (Section IV-A's
//! "update their positions in the sorted lists").

use crate::ordered::OrderedF64;
use crate::topk::TopK;
use std::collections::BTreeSet;

/// Abstraction over the sorted parameter lists the TA reads.
///
/// Objects are dense ids `0..num_objects()`. Lists are sorted **descending**
/// by value; `random_access(list, obj)` returns the value object `obj` has
/// in `list`.
pub trait TaSource {
    /// Number of sorted lists (parameters).
    fn num_lists(&self) -> usize;
    /// Number of objects.
    fn num_objects(&self) -> usize;
    /// Descending iterator over `(object, value)` of one list.
    fn sorted_iter(&self, list: usize) -> Box<dyn Iterator<Item = (usize, f64)> + '_>;
    /// The value of `object` in `list`.
    fn random_access(&self, list: usize, object: usize) -> f64;
}

/// Access counts reported by [`threshold_top_k`]; the whole point of the TA
/// is that `sorted_accesses ≪ num_lists · num_objects` on favourable inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaInstrumentation {
    /// Entries read by sequential (sorted) access.
    pub sorted_accesses: usize,
    /// Values fetched by random access.
    pub random_accesses: usize,
    /// Distinct objects fully scored.
    pub objects_scored: usize,
    /// Number of parallel rounds (depth reached in every list).
    pub depth: usize,
}

/// Runs the threshold algorithm: returns the `k` objects with the largest
/// `agg(values…)` scores (descending), plus instrumentation.
///
/// `agg` must be monotone in every argument — this is the Section IV-A
/// requirement on the bid functions `f_j` and is what makes the stopping
/// threshold sound.
pub fn threshold_top_k<S: TaSource + ?Sized>(
    source: &S,
    agg: &dyn Fn(&[f64]) -> f64,
    k: usize,
) -> (Vec<(usize, f64)>, TaInstrumentation) {
    let lists = source.num_lists();
    let n = source.num_objects();
    let mut instr = TaInstrumentation::default();
    if k == 0 || lists == 0 || n == 0 {
        return (Vec::new(), instr);
    }

    let mut iters: Vec<_> = (0..lists).map(|l| source.sorted_iter(l)).collect();
    let mut last_seen: Vec<Option<f64>> = vec![None; lists];
    let mut seen = vec![false; n];
    let mut top = TopK::new(k);
    let mut scratch = vec![0.0f64; lists];

    loop {
        let mut any_progress = false;
        for (l, iter) in iters.iter_mut().enumerate() {
            let Some((obj, val)) = iter.next() else {
                continue;
            };
            any_progress = true;
            instr.sorted_accesses += 1;
            last_seen[l] = Some(val);
            if !seen[obj] {
                seen[obj] = true;
                for (l2, slot) in scratch.iter_mut().enumerate() {
                    if l2 == l {
                        *slot = val;
                    } else {
                        *slot = source.random_access(l2, obj);
                        instr.random_accesses += 1;
                    }
                }
                instr.objects_scored += 1;
                top.offer(obj, agg(&scratch));
            }
        }
        if !any_progress {
            break; // every list exhausted
        }
        instr.depth += 1;
        // Threshold: the best score any unseen object could still achieve.
        if last_seen.iter().all(Option::is_some) {
            for (slot, v) in scratch.iter_mut().zip(&last_seen) {
                *slot = v.expect("checked above");
            }
            let tau = agg(&scratch);
            if let Some(floor) = top.current_floor() {
                if floor >= tau {
                    break;
                }
            }
        }
    }
    (top.into_sorted_desc(), instr)
}

/// A sorted parameter list with `O(log n)` incremental updates.
///
/// Backed by a `BTreeSet<(value, object)>` plus a dense value array for
/// random access. This is the structure Section IV-A maintains per
/// advertiser-specific parameter: after the k winners of an auction update
/// their parameters, repositioning costs `O(|Y| k log n)` overall.
#[derive(Debug, Clone)]
pub struct MaintainedIndex {
    values: Vec<f64>,
    sorted: BTreeSet<(OrderedF64, usize)>,
}

impl MaintainedIndex {
    /// Builds an index over the given per-object values.
    pub fn new(values: Vec<f64>) -> Self {
        let sorted = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (OrderedF64::new(v), i))
            .collect();
        MaintainedIndex { values, sorted }
    }

    /// Number of objects in the index.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of an object.
    pub fn value(&self, object: usize) -> f64 {
        self.values[object]
    }

    /// Updates an object's value, repositioning it in `O(log n)`.
    pub fn update(&mut self, object: usize, new_value: f64) {
        let old = self.values[object];
        let removed = self.sorted.remove(&(OrderedF64::new(old), object));
        debug_assert!(removed, "index out of sync");
        self.values[object] = new_value;
        self.sorted.insert((OrderedF64::new(new_value), object));
    }

    /// Descending `(object, value)` iterator.
    pub fn iter_desc(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.sorted.iter().rev().map(|&(v, o)| (o, v.get()))
    }
}

/// A [`TaSource`] over a set of [`MaintainedIndex`]es (one per parameter).
pub struct IndexedSource<'a> {
    lists: Vec<&'a MaintainedIndex>,
}

impl<'a> IndexedSource<'a> {
    /// Builds a source from per-parameter indexes.
    ///
    /// # Panics
    ///
    /// Panics if the indexes disagree on the number of objects or no index
    /// is supplied.
    pub fn new(lists: Vec<&'a MaintainedIndex>) -> Self {
        assert!(!lists.is_empty(), "at least one list required");
        let n = lists[0].len();
        assert!(
            lists.iter().all(|l| l.len() == n),
            "all lists must cover the same objects"
        );
        IndexedSource { lists }
    }
}

impl TaSource for IndexedSource<'_> {
    fn num_lists(&self) -> usize {
        self.lists.len()
    }
    fn num_objects(&self) -> usize {
        self.lists[0].len()
    }
    fn sorted_iter(&self, list: usize) -> Box<dyn Iterator<Item = (usize, f64)> + '_> {
        Box::new(self.lists[list].iter_desc())
    }
    fn random_access(&self, list: usize, object: usize) -> f64 {
        self.lists[list].value(object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: score everything, sort, truncate.
    fn full_scan(lists: &[Vec<f64>], agg: &dyn Fn(&[f64]) -> f64, k: usize) -> Vec<(usize, f64)> {
        let n = lists[0].len();
        let mut scored: Vec<(usize, f64)> = (0..n)
            .map(|o| {
                let vals: Vec<f64> = lists.iter().map(|l| l[o]).collect();
                (o, agg(&vals))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    fn indexes(lists: &[Vec<f64>]) -> Vec<MaintainedIndex> {
        lists
            .iter()
            .map(|l| MaintainedIndex::new(l.clone()))
            .collect()
    }

    #[test]
    fn finds_exact_top_k_sum() {
        let lists = vec![vec![5.0, 1.0, 3.0, 9.0, 2.0], vec![2.0, 8.0, 3.0, 1.0, 7.0]];
        let idx = indexes(&lists);
        let source = IndexedSource::new(idx.iter().collect());
        let agg = |v: &[f64]| v.iter().sum::<f64>();
        let (got, instr) = threshold_top_k(&source, &agg, 2);
        assert_eq!(got, full_scan(&lists, &agg, 2));
        assert!(instr.sorted_accesses > 0);
    }

    #[test]
    fn early_termination_on_skewed_lists() {
        // One object dominates both lists: TA must stop after depth ~2,
        // far before scanning all n objects.
        let n = 1000;
        let mut a: Vec<f64> = (0..n).map(|i| i as f64 / 1000.0).collect();
        let mut b = a.clone();
        a[500] = 100.0;
        b[500] = 100.0;
        let lists = vec![a, b];
        let idx = indexes(&lists);
        let source = IndexedSource::new(idx.iter().collect());
        let agg = |v: &[f64]| v.iter().sum::<f64>();
        let (got, instr) = threshold_top_k(&source, &agg, 1);
        assert_eq!(got[0].0, 500);
        assert!(
            instr.sorted_accesses < 20,
            "TA should stop early, made {} accesses",
            instr.sorted_accesses
        );
    }

    #[test]
    fn product_aggregation() {
        // The engine's actual shape: weight × monotone bid function.
        let lists = vec![vec![0.5, 0.9, 0.1, 0.7], vec![10.0, 2.0, 50.0, 8.0]];
        let idx = indexes(&lists);
        let source = IndexedSource::new(idx.iter().collect());
        let agg = |v: &[f64]| v[0] * v[1];
        let (got, _) = threshold_top_k(&source, &agg, 4);
        assert_eq!(got, full_scan(&lists, &agg, 4));
    }

    #[test]
    fn k_larger_than_n() {
        let lists = vec![vec![1.0, 2.0]];
        let idx = indexes(&lists);
        let source = IndexedSource::new(idx.iter().collect());
        let agg = |v: &[f64]| v[0];
        let (got, _) = threshold_top_k(&source, &agg, 10);
        assert_eq!(got, vec![(1, 2.0), (0, 1.0)]);
    }

    #[test]
    fn zero_k_and_empty() {
        let lists = vec![vec![1.0]];
        let idx = indexes(&lists);
        let source = IndexedSource::new(idx.iter().collect());
        let agg = |v: &[f64]| v[0];
        let (got, instr) = threshold_top_k(&source, &agg, 0);
        assert!(got.is_empty());
        assert_eq!(instr.sorted_accesses, 0);
    }

    #[test]
    fn maintained_index_updates() {
        let mut idx = MaintainedIndex::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(
            idx.iter_desc().collect::<Vec<_>>(),
            vec![(0, 3.0), (2, 2.0), (1, 1.0)]
        );
        idx.update(1, 10.0);
        assert_eq!(idx.value(1), 10.0);
        assert_eq!(idx.iter_desc().next(), Some((1, 10.0)));
        idx.update(1, 0.5);
        assert_eq!(idx.iter_desc().last(), Some((1, 0.5)));
    }

    #[test]
    fn ta_consistent_after_updates() {
        let mut w = MaintainedIndex::new(vec![0.1, 0.2, 0.3, 0.4]);
        let mut bid = MaintainedIndex::new(vec![10.0, 10.0, 10.0, 10.0]);
        let agg = |v: &[f64]| v[0] * v[1];
        // Initially object 3 wins.
        {
            let source = IndexedSource::new(vec![&w, &bid]);
            let (got, _) = threshold_top_k(&source, &agg, 1);
            assert_eq!(got[0].0, 3);
        }
        // The winner's bid is slashed; object 2 should take over.
        bid.update(3, 1.0);
        w.update(0, 0.15);
        {
            let source = IndexedSource::new(vec![&w, &bid]);
            let (got, _) = threshold_top_k(&source, &agg, 1);
            assert_eq!(got[0].0, 2);
        }
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_lists_rejected() {
        let a = MaintainedIndex::new(vec![1.0]);
        let b = MaintainedIndex::new(vec![1.0, 2.0]);
        let _ = IndexedSource::new(vec![&a, &b]);
    }
}
