//! Maximum-weight bipartite matching via shortest augmenting paths.
//!
//! This is the paper's method **H**: the Hungarian (Kuhn–Munkres) algorithm
//! run "in a straightforward way ... in the bipartite graph with advertisers
//! on the left and slots on the right" (Section V). We use the
//! Jonker–Volgenant formulation with dual potentials: one augmenting phase
//! per slot, each phase a Dijkstra-like scan over all advertiser columns.
//!
//! * Rows are the `k` slots, columns are the `n` advertisers plus `k`
//!   zero-weight *dummy* columns. Matching a slot to a dummy leaves it
//!   empty, which makes partial matchings (negative or [`EXCLUDED`] weights)
//!   come out naturally: a slot is filled only when doing so cannot lower
//!   the total weight.
//! * Complexity `O(k² (n + k))` — the full `n × k` matrix is scanned a
//!   constant number of times per slot, which is exactly what the
//!   reduced-graph method of Section III-E avoids.

use crate::matrix::{Assignment, RevenueMatrix, EXCLUDED};
use crate::solver::WdSolver;

/// Method **H** as a reusable [`WdSolver`]: the Jonker–Volgenant scratch
/// arrays (dual potentials, match/backtrack/label vectors) persist across
/// calls, so solving a stream of same-sized instances performs no
/// allocation after the first call.
#[derive(Debug, Default, Clone)]
pub struct HungarianSolver {
    u: Vec<f64>,             // slot potentials
    v: Vec<f64>,             // column potentials
    matched_row: Vec<usize>, // column -> slot (1-based, 0 = free)
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
}

impl HungarianSolver {
    /// Creates a solver with empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        HungarianSolver::default()
    }

    /// Resizes every scratch vector for a `k`-slot, `cols`-column instance
    /// and resets it to its initial value, reusing existing capacity.
    fn reset_scratch(&mut self, k: usize, cols: usize) {
        self.u.clear();
        self.u.resize(k + 1, 0.0);
        self.v.clear();
        self.v.resize(cols + 1, 0.0);
        self.matched_row.clear();
        self.matched_row.resize(cols + 1, 0);
        self.way.clear();
        self.way.resize(cols + 1, 0);
        self.minv.clear();
        self.minv.resize(cols + 1, 0.0);
        self.used.clear();
        self.used.resize(cols + 1, false);
    }
}

impl WdSolver for HungarianSolver {
    fn name(&self) -> &'static str {
        "hungarian"
    }

    fn solve(&mut self, matrix: &RevenueMatrix, out: &mut Assignment) {
        let n = matrix.num_advertisers();
        let k = matrix.num_slots();
        let cols = n + k; // advertisers + one dummy per slot
        self.reset_scratch(k, cols);

        // Minimisation formulation: cost = -weight, dummies cost 0,
        // excluded ∞.
        let cost = |slot: usize, col: usize| -> f64 {
            if col < n {
                let w = matrix.get(col, slot);
                if w == EXCLUDED {
                    f64::INFINITY
                } else {
                    -w
                }
            } else {
                0.0
            }
        };

        // Jonker–Volgenant with 1-based sentinel index 0 (e-maxx
        // formulation).
        for slot in 1..=k {
            self.matched_row[0] = slot;
            let mut j0 = 0usize;
            self.minv.iter_mut().for_each(|m| *m = f64::INFINITY);
            self.used.iter_mut().for_each(|u| *u = false);
            loop {
                self.used[j0] = true;
                let i0 = self.matched_row[j0];
                let mut delta = f64::INFINITY;
                let mut j1 = 0usize;
                for j in 1..=cols {
                    if self.used[j] {
                        continue;
                    }
                    let cur = cost(i0 - 1, j - 1) - self.u[i0] - self.v[j];
                    if cur < self.minv[j] {
                        self.minv[j] = cur;
                        self.way[j] = j0;
                    }
                    if self.minv[j] < delta {
                        delta = self.minv[j];
                        j1 = j;
                    }
                }
                debug_assert!(
                    delta.is_finite(),
                    "augmenting phase stuck: dummy columns guarantee feasibility"
                );
                for j in 0..=cols {
                    if self.used[j] {
                        self.u[self.matched_row[j]] += delta;
                        self.v[j] -= delta;
                    } else {
                        self.minv[j] -= delta; // ∞ stays ∞
                    }
                }
                j0 = j1;
                if self.matched_row[j0] == 0 {
                    break;
                }
            }
            // Unwind the alternating path.
            loop {
                let j1 = self.way[j0];
                self.matched_row[j0] = self.matched_row[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }

        out.reset(k);
        for col in 1..=n {
            let row = self.matched_row[col];
            if row != 0 {
                let adv = col - 1;
                let slot = row - 1;
                out.slot_to_adv[slot] = Some(adv);
                out.total_weight += matrix.get(adv, slot);
            }
        }
    }
}

/// Computes a maximum-weight (partial) assignment of slots to advertisers.
///
/// Every slot is matched to at most one advertiser and vice versa; slots are
/// left empty when every available advertiser has [`EXCLUDED`] or negative
/// weight there. Ties are resolved deterministically (lowest column index).
///
/// One-shot convenience over [`HungarianSolver`]; construct the solver
/// directly to amortise scratch allocation across auctions.
///
/// ```
/// use ssa_matching::{max_weight_assignment, RevenueMatrix};
/// // The paper's Figure 9 matrix (Nike, Adidas, Reebok, Sketchers × 2 slots).
/// let m = RevenueMatrix::from_rows(&[
///     vec![9.0, 5.0],
///     vec![8.0, 7.0],
///     vec![7.0, 6.0],
///     vec![7.0, 4.0],
/// ]);
/// let a = max_weight_assignment(&m);
/// assert_eq!(a.total_weight, 16.0); // Nike → slot 1, Adidas → slot 2
/// assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
/// ```
pub fn max_weight_assignment(matrix: &RevenueMatrix) -> Assignment {
    HungarianSolver::new().solve_alloc(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::brute_force_assignment;

    #[test]
    fn figure9_example() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0], // Nike
            vec![8.0, 7.0], // Adidas
            vec![7.0, 6.0], // Reebok
            vec![7.0, 4.0], // Sketchers
        ]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
        assert_eq!(a.total_weight, 16.0);
        assert!(a.is_valid(4));
    }

    #[test]
    fn more_slots_than_advertisers() {
        let m = RevenueMatrix::from_rows(&[vec![3.0, 1.0, 2.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), None, None]);
        assert_eq!(a.total_weight, 3.0);
    }

    #[test]
    fn excluded_edges_respected() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED, 5.0], vec![8.0, EXCLUDED]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(1), Some(0)]);
        assert_eq!(a.total_weight, 13.0);
    }

    #[test]
    fn fully_excluded_slot_left_empty() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED, 5.0], vec![EXCLUDED, 4.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv[0], None);
        assert_eq!(a.slot_to_adv[1], Some(0));
    }

    #[test]
    fn negative_weights_prefer_empty_slot() {
        let m = RevenueMatrix::from_rows(&[vec![-2.0], vec![-5.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn mixed_signs_take_only_profitable() {
        let m = RevenueMatrix::from_rows(&[vec![4.0, -1.0], vec![-3.0, -2.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), None]);
        assert_eq!(a.total_weight, 4.0);
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 3);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None, None, None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn separable_matrix_sorts_by_factors() {
        // Figure 8: separable probabilities ⇒ the j-th best advertiser gets
        // the j-th best slot. Values: advertiser factors 4, 3; slot factors
        // 0.2, 0.1; identical per-click value 10.
        let m = RevenueMatrix::from_fn(2, 2, |i, j| {
            let adv = [4.0, 3.0][i];
            let slot = [0.2, 0.1][j];
            adv * slot * 10.0
        });
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
    }

    #[test]
    fn reused_solver_matches_fresh_across_sizes() {
        // One persistent solver solving a stream of instances of varying
        // dimensions must agree with a fresh solver every time.
        let mut persistent = HungarianSolver::new();
        let mut out = Assignment::empty(1);
        let mut state = 0xABCDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 900) as f64 / 9.0
        };
        for (n, k) in [(4, 2), (1, 3), (7, 7), (0, 2), (5, 1), (4, 2)] {
            let m = RevenueMatrix::from_fn(n, k, |_, _| next());
            persistent.solve(&m, &mut out);
            let fresh = max_weight_assignment(&m);
            assert_eq!(out, fresh, "n={n} k={k}");
        }
    }

    #[test]
    fn agrees_with_brute_force_on_small_grids() {
        // Deterministic pseudo-random matrices.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for n in 1..=6 {
            for k in 1..=4 {
                let m = RevenueMatrix::from_fn(n, k, |_, _| next());
                let fast = max_weight_assignment(&m);
                let slow = brute_force_assignment(&m);
                assert!(
                    (fast.total_weight - slow.total_weight).abs() < 1e-9,
                    "n={n} k={k}: hungarian {} vs brute {}",
                    fast.total_weight,
                    slow.total_weight
                );
                assert!((fast.weight_in(&m) - fast.total_weight).abs() < 1e-9);
            }
        }
    }
}
