//! Maximum-weight bipartite matching via shortest augmenting paths.
//!
//! This is the paper's method **H**: the Hungarian (Kuhn–Munkres) algorithm
//! run "in a straightforward way ... in the bipartite graph with advertisers
//! on the left and slots on the right" (Section V). We use the
//! Jonker–Volgenant formulation with dual potentials: one augmenting phase
//! per slot, each phase a Dijkstra-like scan over all advertiser columns.
//!
//! * Rows are the `k` slots, columns are the `n` advertisers plus `k`
//!   zero-weight *dummy* columns. Matching a slot to a dummy leaves it
//!   empty, which makes partial matchings (negative or [`EXCLUDED`] weights)
//!   come out naturally: a slot is filled only when doing so cannot lower
//!   the total weight.
//! * Complexity `O(k² (n + k))` — the full `n × k` matrix is scanned a
//!   constant number of times per slot, which is exactly what the
//!   reduced-graph method of Section III-E avoids.

use crate::matrix::{Assignment, RevenueMatrix, EXCLUDED};

/// Computes a maximum-weight (partial) assignment of slots to advertisers.
///
/// Every slot is matched to at most one advertiser and vice versa; slots are
/// left empty when every available advertiser has [`EXCLUDED`] or negative
/// weight there. Ties are resolved deterministically (lowest column index).
///
/// ```
/// use ssa_matching::{max_weight_assignment, RevenueMatrix};
/// // The paper's Figure 9 matrix (Nike, Adidas, Reebok, Sketchers × 2 slots).
/// let m = RevenueMatrix::from_rows(&[
///     vec![9.0, 5.0],
///     vec![8.0, 7.0],
///     vec![7.0, 6.0],
///     vec![7.0, 4.0],
/// ]);
/// let a = max_weight_assignment(&m);
/// assert_eq!(a.total_weight, 16.0); // Nike → slot 1, Adidas → slot 2
/// assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
/// ```
pub fn max_weight_assignment(matrix: &RevenueMatrix) -> Assignment {
    let n = matrix.num_advertisers();
    let k = matrix.num_slots();
    let cols = n + k; // advertisers + one dummy per slot

    // Minimisation formulation: cost = -weight, dummies cost 0, excluded ∞.
    let cost = |slot: usize, col: usize| -> f64 {
        if col < n {
            let w = matrix.get(col, slot);
            if w == EXCLUDED {
                f64::INFINITY
            } else {
                -w
            }
        } else {
            0.0
        }
    };

    // Jonker–Volgenant with 1-based sentinel index 0 (e-maxx formulation).
    let mut u = vec![0.0f64; k + 1]; // slot potentials
    let mut v = vec![0.0f64; cols + 1]; // column potentials
    let mut matched_row = vec![0usize; cols + 1]; // column -> slot (1-based, 0 = free)
    let mut way = vec![0usize; cols + 1];
    let mut minv = vec![0.0f64; cols + 1];
    let mut used = vec![false; cols + 1];

    for slot in 1..=k {
        matched_row[0] = slot;
        let mut j0 = 0usize;
        minv.iter_mut().for_each(|m| *m = f64::INFINITY);
        used.iter_mut().for_each(|u| *u = false);
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(
                delta.is_finite(),
                "augmenting phase stuck: dummy columns guarantee feasibility"
            );
            for j in 0..=cols {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta; // ∞ stays ∞
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Unwind the alternating path.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut slot_to_adv = vec![None; k];
    let mut total_weight = 0.0;
    #[allow(clippy::needless_range_loop)] // indexes two parallel arrays
    for col in 1..=n {
        let row = matched_row[col];
        if row != 0 {
            let adv = col - 1;
            let slot = row - 1;
            slot_to_adv[slot] = Some(adv);
            total_weight += matrix.get(adv, slot);
        }
    }
    Assignment {
        slot_to_adv,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::brute_force_assignment;

    #[test]
    fn figure9_example() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0], // Nike
            vec![8.0, 7.0], // Adidas
            vec![7.0, 6.0], // Reebok
            vec![7.0, 4.0], // Sketchers
        ]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
        assert_eq!(a.total_weight, 16.0);
        assert!(a.is_valid(4));
    }

    #[test]
    fn more_slots_than_advertisers() {
        let m = RevenueMatrix::from_rows(&[vec![3.0, 1.0, 2.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), None, None]);
        assert_eq!(a.total_weight, 3.0);
    }

    #[test]
    fn excluded_edges_respected() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED, 5.0], vec![8.0, EXCLUDED]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(1), Some(0)]);
        assert_eq!(a.total_weight, 13.0);
    }

    #[test]
    fn fully_excluded_slot_left_empty() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED, 5.0], vec![EXCLUDED, 4.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv[0], None);
        assert_eq!(a.slot_to_adv[1], Some(0));
    }

    #[test]
    fn negative_weights_prefer_empty_slot() {
        let m = RevenueMatrix::from_rows(&[vec![-2.0], vec![-5.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn mixed_signs_take_only_profitable() {
        let m = RevenueMatrix::from_rows(&[vec![4.0, -1.0], vec![-3.0, -2.0]]);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), None]);
        assert_eq!(a.total_weight, 4.0);
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 3);
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None, None, None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn separable_matrix_sorts_by_factors() {
        // Figure 8: separable probabilities ⇒ the j-th best advertiser gets
        // the j-th best slot. Values: advertiser factors 4, 3; slot factors
        // 0.2, 0.1; identical per-click value 10.
        let m = RevenueMatrix::from_fn(2, 2, |i, j| {
            let adv = [4.0, 3.0][i];
            let slot = [0.2, 0.1][j];
            adv * slot * 10.0
        });
        let a = max_weight_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
    }

    #[test]
    fn agrees_with_brute_force_on_small_grids() {
        // Deterministic pseudo-random matrices.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for n in 1..=6 {
            for k in 1..=4 {
                let m = RevenueMatrix::from_fn(n, k, |_, _| next());
                let fast = max_weight_assignment(&m);
                let slow = brute_force_assignment(&m);
                assert!(
                    (fast.total_weight - slow.total_weight).abs() < 1e-9,
                    "n={n} k={k}: hungarian {} vs brute {}",
                    fast.total_weight,
                    slow.total_weight
                );
                assert!((fast.weight_in(&m) - fast.total_weight).abs() < 1e-9);
            }
        }
    }
}
