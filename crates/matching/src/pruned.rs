//! Top-k pruned winner determination: a [`WdSolver`] wrapper implementing
//! the Section III-E reduction around *any* inner method.
//!
//! For each slot, only an advertiser among that slot's top-k expected
//! revenues can win it: if an assignment gives slot `j` to an advertiser
//! strictly below the slot's k-th best weight, at least one strictly better
//! advertiser is unassigned (there are `k` of them and at most `k - 1`
//! other filled slots), and swapping it in strictly increases total weight.
//! [`PrunedSolver`] therefore solves on the union of the per-slot top-k
//! sets — `O(k + n log k)` selection, then a dense `|union| × k` candidate
//! matrix — and maps the assignment back to original ids.
//!
//! ## Bit-identical to the unpruned solve
//!
//! Unlike [`ReducedSolver`](crate::reduced::ReducedSolver), which keeps
//! exactly `k` advertisers per slot (breaking weight ties towards smaller
//! ids), this wrapper keeps **every advertiser tying the per-slot floor**
//! (the k-th largest weight). The exchange argument above is strict, so a
//! dropped advertiser appears in *no* maximum-weight assignment — the
//! candidate matrix retains every row any optimal solution can use. The
//! candidate list is sorted ascending, so relative row order (and with it
//! each solver's deterministic tie-breaking) is preserved under the
//! monotone reindexing.
//!
//! One residual hazard: when two *candidates* tie exactly, the inner
//! solvers pick among the equally-optimal assignments by a path-dependent
//! rule that the pruned-away rows can still influence (a dominated row's
//! augmenting pass may re-route tied winners even though it never ends up
//! assigned). With the engine's separable weights (`bid × p(slot)`), two
//! candidates can tie exactly only by having **identical weight rows** —
//! so the solver detects duplicate candidate rows and falls back to the
//! full matrix, making both paths run the identical solve. The result:
//! winners, total weight, and every downstream price are bit-identical to
//! running the inner solver on the full matrix, which the equivalence
//! suite in `ssa_core` checks through the whole serving stack. Solvers
//! draw no randomness, so RNG stream positions are untouched by
//! construction.

use crate::matrix::{Assignment, RevenueMatrix, EXCLUDED};
use crate::solver::WdSolver;
use crate::topk::TopK;

/// A [`WdSolver`] that prunes the revenue matrix to the union of per-slot
/// top-k candidates (ties at the floor kept) before delegating to `inner`.
///
/// All scratch — the per-slot heaps, the keep mask, the candidate list, and
/// the dense candidate matrix — persists across calls, so a stream of
/// same-sized auctions allocates nothing after warm-up.
#[derive(Debug)]
pub struct PrunedSolver<S = crate::solver::BoxedWdSolver> {
    collectors: Vec<TopK>,
    keep: Vec<bool>,
    candidates: Vec<usize>,
    /// Candidate ids sorted by weight row — scratch for duplicate-row
    /// detection (the exact-tie fallback).
    order: Vec<usize>,
    sub: RevenueMatrix,
    sub_out: Assignment,
    inner: S,
    last_candidates: usize,
}

impl<S: WdSolver> PrunedSolver<S> {
    /// Wraps `inner` with the top-k pruning pass.
    pub fn new(inner: S) -> Self {
        PrunedSolver {
            collectors: Vec::new(),
            keep: Vec::new(),
            candidates: Vec::new(),
            order: Vec::new(),
            sub: RevenueMatrix::zeros(0, 1),
            sub_out: Assignment::default(),
            inner,
            last_candidates: 0,
        }
    }

    /// True when two candidates have exactly equal weight rows — the one
    /// tie class separable weights can realise, and the one case where
    /// solving the reduced matrix could land on a *different*
    /// equally-optimal assignment than the full solve.
    fn has_duplicate_candidate_rows(&mut self, matrix: &RevenueMatrix, k: usize) -> bool {
        let row_cmp = |&a: &usize, &b: &usize| {
            for j in 0..k {
                match matrix.get(a, j).total_cmp(&matrix.get(b, j)) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        };
        self.order.clear();
        self.order.extend_from_slice(&self.candidates);
        self.order.sort_unstable_by(row_cmp);
        self.order
            .windows(2)
            .any(|w| row_cmp(&w[0], &w[1]) == std::cmp::Ordering::Equal)
    }

    /// The wrapped solver.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Candidate ids kept by the most recent solve (ascending original
    /// advertiser ids). Equals `0..n` when pruning did not engage.
    pub fn candidates(&self) -> &[usize] {
        &self.candidates
    }
}

impl<S: WdSolver> WdSolver for PrunedSolver<S> {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "hungarian" => "pruned-hungarian",
            "reduced" => "pruned-reduced",
            "reduced-parallel" => "pruned-reduced-parallel",
            "network-simplex" => "pruned-network-simplex",
            _ => "pruned",
        }
    }

    fn solve(&mut self, matrix: &RevenueMatrix, out: &mut Assignment) {
        let n = matrix.num_advertisers();
        let k = matrix.num_slots();

        // Per-slot top-k floors via persistent bounded heaps.
        if self.collectors.len() != k {
            self.collectors.resize_with(k, || TopK::new(k));
        }
        self.keep.clear();
        self.keep.resize(n, false);
        for (slot, collector) in self.collectors.iter_mut().enumerate() {
            collector.reset(k);
            let column = matrix.column(slot);
            for (adv, &w) in column.iter().enumerate() {
                collector.offer(adv, w);
            }
            // Keep everything at or above the slot's k-th best weight; a
            // partially-filled heap means fewer than k admissible entries,
            // so nothing in this column may be dropped.
            match collector.current_floor() {
                Some(floor) => {
                    for (adv, &w) in column.iter().enumerate() {
                        if w != EXCLUDED && w >= floor {
                            self.keep[adv] = true;
                        }
                    }
                }
                None => {
                    for (adv, &w) in column.iter().enumerate() {
                        if w != EXCLUDED {
                            self.keep[adv] = true;
                        }
                    }
                }
            }
        }

        // Ascending candidate union straight off the keep mask: already
        // sorted and deduplicated.
        self.candidates.clear();
        self.candidates.extend((0..n).filter(|&adv| self.keep[adv]));

        // Exact-tie fallback: duplicate candidate rows mean multiple
        // optimal assignments, and the inner solver's choice among them
        // can depend on the pruned-away rows. Solve the full matrix so
        // the tie resolves identically to the unpruned path. (A duplicate
        // of a candidate is itself a candidate — identical rows make
        // identical keep decisions — so checking candidates suffices.)
        if self.candidates.len() < n && self.has_duplicate_candidate_rows(matrix, k) {
            self.candidates.clear();
            self.candidates.extend(0..n);
        }
        self.last_candidates = self.candidates.len();

        if self.candidates.len() == n {
            // Nothing pruned — hand the original matrix to the inner solver
            // so the call is trivially identical to the unpruned path.
            self.inner.solve(matrix, out);
            return;
        }

        matrix.restrict_advertisers_into(&self.candidates, &mut self.sub);
        self.inner.solve(&self.sub, &mut self.sub_out);
        out.reset(k);
        out.total_weight = self.sub_out.total_weight;
        for (j, local) in self.sub_out.slot_to_adv.iter().enumerate() {
            out.slot_to_adv[j] = local.map(|l| self.candidates[l]);
        }
    }

    fn last_candidates(&self) -> Option<usize> {
        Some(self.last_candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::HungarianSolver;
    use crate::reduced::ReducedSolver;

    fn pseudorandom_matrix(n: usize, k: usize, seed: u64) -> RevenueMatrix {
        let mut state = seed | 1;
        RevenueMatrix::from_fn(n, k, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 100.0
        })
    }

    #[test]
    fn figure_9_walkthrough_prunes_sketchers() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0], // Nike
            vec![8.0, 7.0], // Adidas
            vec![7.0, 6.0], // Reebok
            vec![7.0, 4.0], // Sketchers
        ]);
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let mut full = HungarianSolver::new();
        let got = pruned.solve_alloc(&m);
        let want = full.solve_alloc(&m);
        assert_eq!(got, want);
        // Figure 11: slot 1's floor is 8.0 (top-2 of 9, 8, 7, 7) and
        // slot 2's is 6.0, so Sketchers (id 3) is strictly dominated
        // everywhere and pruned away — matching the paper's sub-graph.
        assert_eq!(pruned.candidates(), &[0, 1, 2]);
    }

    #[test]
    fn prunes_strictly_dominated_advertisers() {
        // One strong advertiser per slot plus a tail of strictly weaker
        // ones: the tail must be dropped.
        let m = RevenueMatrix::from_fn(20, 2, |i, j| {
            if i < 4 {
                100.0 + (i * 2 + j) as f64
            } else {
                (i + j) as f64 / 100.0
            }
        });
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let mut full = HungarianSolver::new();
        let got = pruned.solve_alloc(&m);
        assert_eq!(got, full.solve_alloc(&m));
        assert!(pruned.last_candidates().unwrap() < 20);
        // Slot floors are 104.0 and 105.0, so only ids 2 and 3 survive.
        assert_eq!(pruned.candidates(), &[2, 3]);
    }

    #[test]
    fn matches_inner_on_pseudorandom_instances() {
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let mut full = HungarianSolver::new();
        for (n, k, seed) in [
            (1usize, 1usize, 1u64),
            (5, 2, 2),
            (12, 3, 3),
            (40, 4, 4),
            (120, 5, 5),
            (40, 4, 6),
        ] {
            let m = pseudorandom_matrix(n, k, seed);
            let got = pruned.solve_alloc(&m);
            let want = full.solve_alloc(&m);
            assert_eq!(got, want, "n={n} k={k} seed={seed}");
            assert!(pruned.last_candidates().unwrap() <= n);
        }
    }

    #[test]
    fn wraps_reduced_solver_too() {
        let mut pruned = PrunedSolver::new(ReducedSolver::new());
        let mut full = ReducedSolver::new();
        let m = pseudorandom_matrix(60, 3, 11);
        assert_eq!(pruned.solve_alloc(&m), full.solve_alloc(&m));
        assert!(pruned.last_candidates().unwrap() < 60);
        assert_eq!(pruned.name(), "pruned-reduced");
    }

    #[test]
    fn ties_at_the_floor_are_kept() {
        // Five advertisers all tying at 7.0 in a one-slot market: a strict
        // top-1 cut would keep only id 0; the floor-inclusive cut keeps all.
        let m = RevenueMatrix::from_fn(5, 1, |_, _| 7.0);
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let mut full = HungarianSolver::new();
        assert_eq!(pruned.solve_alloc(&m), full.solve_alloc(&m));
        assert_eq!(pruned.candidates(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_candidate_rows_force_the_full_solve() {
        // Ids 0 and 1 tie exactly (equal weight rows) and id 3 is also a
        // candidate, while id 2 is strictly dominated. The tie means the
        // inner solver's pick among equally-optimal assignments could be
        // steered by the dominated row, so pruning must stand down and
        // hand the full matrix to the inner solver.
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0],
            vec![9.0, 5.0],
            vec![0.1, 0.1],
            vec![8.0, 7.0],
        ]);
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let mut full = HungarianSolver::new();
        assert_eq!(pruned.solve_alloc(&m), full.solve_alloc(&m));
        assert_eq!(pruned.last_candidates(), Some(4));
        assert_eq!(pruned.candidates(), &[0, 1, 2, 3]);
        // Distinct candidate rows over the same dominated tail still prune.
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0],
            vec![9.0, 4.0],
            vec![0.1, 0.1],
            vec![8.0, 7.0],
        ]);
        assert_eq!(pruned.solve_alloc(&m), full.solve_alloc(&m));
        assert_eq!(pruned.candidates(), &[0, 1, 3]);
    }

    #[test]
    fn excluded_rows_are_dropped() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED], vec![EXCLUDED], vec![1.0]]);
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let got = pruned.solve_alloc(&m);
        assert_eq!(got.slot_to_adv, vec![Some(2)]);
        assert_eq!(pruned.candidates(), &[2]);
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 2);
        let mut pruned = PrunedSolver::new(HungarianSolver::new());
        let got = pruned.solve_alloc(&m);
        assert_eq!(got.slot_to_adv, vec![None, None]);
        assert_eq!(pruned.last_candidates(), Some(0));
    }
}
