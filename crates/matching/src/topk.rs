//! Bounded top-k selection with binary heaps.
//!
//! Section III-E: "for each slot, we can find the top k bidders for that
//! slot in time O(k + n log k) by maintaining a priority heap of size at
//! most k". [`TopK`] is that heap; [`top_k_indices`] applies it to every
//! column of a revenue matrix.

use crate::matrix::{RevenueMatrix, EXCLUDED};
use crate::ordered::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A fixed-capacity collector retaining the `k` largest `(weight, id)`
/// entries seen so far. Ties are broken towards smaller ids (deterministic).
#[derive(Debug, Clone)]
pub struct TopK {
    capacity: usize,
    // Min-heap of the current top entries; `Reverse` flips `BinaryHeap`'s
    // max-heap order. Keyed on (weight, Reverse(id)) so that among equal
    // weights the *larger* id is evicted first.
    heap: BinaryHeap<Reverse<(OrderedF64, Reverse<usize>)>>,
}

impl TopK {
    /// Creates a collector for the `k` largest entries.
    pub fn new(k: usize) -> Self {
        TopK {
            capacity: k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an entry. [`EXCLUDED`] weights are ignored.
    ///
    /// `O(log k)` when the entry is admitted, `O(1)` when it is rejected.
    pub fn offer(&mut self, id: usize, weight: f64) {
        if self.capacity == 0 || weight == EXCLUDED {
            return;
        }
        let key = Reverse((OrderedF64::new(weight), Reverse(id)));
        if self.heap.len() < self.capacity {
            self.heap.push(key);
        } else if let Some(&Reverse(min)) = self.heap.peek() {
            if (OrderedF64::new(weight), Reverse(id)) > min {
                self.heap.pop();
                self.heap.push(key);
            }
        }
    }

    /// Re-arms the collector for a fresh pass retaining the `k` largest
    /// entries, keeping the heap's allocation. Used by the reusable solvers
    /// to avoid per-auction heap construction.
    pub fn reset(&mut self, k: usize) {
        self.capacity = k;
        self.heap.clear();
    }

    /// Drains the retained ids into `out` in unspecified order, leaving the
    /// collector empty but with its allocation intact.
    pub fn drain_ids_into(&mut self, out: &mut Vec<usize>) {
        out.extend(self.heap.drain().map(|Reverse((_, Reverse(id)))| id));
    }

    /// The smallest retained weight, if the collector is full.
    pub fn current_floor(&self) -> Option<f64> {
        if self.heap.len() < self.capacity {
            None
        } else {
            self.heap.peek().map(|Reverse((w, _))| w.get())
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector, returning `(id, weight)` pairs sorted by
    /// descending weight (ties: ascending id).
    pub fn into_sorted_desc(self) -> Vec<(usize, f64)> {
        let mut entries: Vec<(usize, f64)> = self
            .heap
            .into_iter()
            .map(|Reverse((w, Reverse(id)))| (id, w.get()))
            .collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
    }
}

/// For each slot (column), the ids of the advertisers with the top-k weights
/// in that column, sorted by descending weight. `k` defaults to the number
/// of slots, which is what the reduced-graph method needs.
pub fn top_k_indices(matrix: &RevenueMatrix, k: usize) -> Vec<Vec<(usize, f64)>> {
    let slots = matrix.num_slots();
    let mut collectors: Vec<TopK> = (0..slots).map(|_| TopK::new(k)).collect();
    for (slot, collector) in collectors.iter_mut().enumerate() {
        for (adv, &w) in matrix.column(slot).iter().enumerate() {
            collector.offer(adv, w);
        }
    }
    collectors.into_iter().map(TopK::into_sorted_desc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest() {
        let mut t = TopK::new(2);
        for (id, w) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0)] {
            t.offer(id, w);
        }
        assert_eq!(t.into_sorted_desc(), vec![(1, 5.0), (3, 4.0)]);
    }

    #[test]
    fn ties_prefer_smaller_ids() {
        let mut t = TopK::new(2);
        for id in 0..5 {
            t.offer(id, 7.0);
        }
        assert_eq!(t.into_sorted_desc(), vec![(0, 7.0), (1, 7.0)]);
    }

    #[test]
    fn ignores_excluded_and_zero_capacity() {
        let mut t = TopK::new(2);
        t.offer(0, EXCLUDED);
        assert!(t.is_empty());
        let mut z = TopK::new(0);
        z.offer(0, 1.0);
        assert_eq!(z.len(), 0);
    }

    #[test]
    fn reset_and_drain_reuse() {
        let mut t = TopK::new(2);
        t.offer(0, 1.0);
        t.offer(1, 5.0);
        t.offer(2, 3.0);
        let mut ids = Vec::new();
        t.drain_ids_into(&mut ids);
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert!(t.is_empty());
        t.reset(1);
        t.offer(3, 2.0);
        t.offer(4, 9.0);
        assert_eq!(t.into_sorted_desc(), vec![(4, 9.0)]);
    }

    #[test]
    fn floor_only_when_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.current_floor(), None);
        t.offer(0, 3.0);
        assert_eq!(t.current_floor(), None);
        t.offer(1, 5.0);
        assert_eq!(t.current_floor(), Some(3.0));
        t.offer(2, 4.0);
        assert_eq!(t.current_floor(), Some(4.0));
    }

    #[test]
    fn per_slot_selection_matches_figure10() {
        // Figure 9/10: top-2 for slot 1 are Nike(0) and Adidas(1); for
        // slot 2, Adidas(1) and Reebok(2).
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0],
            vec![8.0, 7.0],
            vec![7.0, 6.0],
            vec![7.0, 4.0],
        ]);
        let tops = top_k_indices(&m, 2);
        let ids: Vec<Vec<usize>> = tops
            .iter()
            .map(|l| l.iter().map(|(id, _)| *id).collect())
            .collect();
        assert_eq!(ids, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn fewer_advertisers_than_k() {
        let m = RevenueMatrix::from_rows(&[vec![2.0], vec![1.0]]);
        let tops = top_k_indices(&m, 5);
        assert_eq!(tops[0].len(), 2);
    }

    #[test]
    fn negative_weights_still_ranked() {
        let m = RevenueMatrix::from_rows(&[vec![-1.0], vec![-3.0], vec![2.0]]);
        let tops = top_k_indices(&m, 2);
        assert_eq!(tops[0], vec![(2, 2.0), (0, -1.0)]);
    }
}
