//! # ssa-matching — winner-determination algorithms
//!
//! Implements Section III (and the top-k machinery of Section IV-A) of
//! *Toward Expressive and Scalable Sponsored Search Auctions*:
//!
//! * [`hungarian`] — maximum-weight bipartite matching between advertisers
//!   and slots via shortest augmenting paths with dual potentials
//!   (Kuhn–Munkres / Jonker–Volgenant style). This is the paper's method
//!   **H**: it touches the full `n × k` revenue matrix.
//! * [`reduced`] — the paper's method **RH** (Section III-E): for each slot,
//!   keep only the advertisers with the top-k expected revenues (bounded
//!   min-heaps, `O(n k log k)`), then run the Hungarian algorithm on the
//!   reduced graph of at most `k²` advertisers (`O(k⁵)`).
//! * [`parallel`] — the binary-tree aggregation networks of Section III-E:
//!   a simulated tree network (verifies the `O(k log n)` combining depth)
//!   and a real multi-threaded implementation.
//! * [`threshold`] — the Fagin–Lotem–Naor threshold algorithm used in
//!   Section IV-A to find the top-k bidders per slot without scanning all
//!   advertisers, over incrementally-maintained sorted parameter indexes.
//! * [`pruned`] — [`PrunedSolver`], the Section III-E top-k reduction as a
//!   wrapper around *any* inner solver, keeping weight ties at the per-slot
//!   floor so the pruned solve stays bit-identical to the unpruned one.
//! * [`exhaustive`] — brute-force reference solvers used to validate
//!   optimality in tests.
//! * [`solver`] — the [`WdSolver`] trait: every method above as a reusable
//!   solver object with persistent scratch buffers, the interface the
//!   batched auction pipeline in `ssa_core` is built on.
//!
//! Weights are `f64` expected revenues. The sentinel [`EXCLUDED`]
//! (`f64::NEG_INFINITY`) marks advertiser–slot pairs that must not be
//! matched; all other weights must be finite. Matchings are *partial*: a slot
//! may stay empty when every remaining advertiser is excluded or when
//! leaving it empty is optimal (all-negative columns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exhaustive;
pub mod hungarian;
pub mod matrix;
pub mod ordered;
pub mod parallel;
pub mod pruned;
pub mod reduced;
pub mod solver;
pub mod threshold;
pub mod topk;

pub use hungarian::{max_weight_assignment, HungarianSolver};
pub use matrix::{Assignment, RevenueMatrix, EXCLUDED};
pub use ordered::OrderedF64;
pub use parallel::ParallelReducedSolver;
pub use pruned::PrunedSolver;
pub use reduced::{reduced_assignment, reduced_candidates, ReducedSolution, ReducedSolver};
pub use solver::{BoxedWdSolver, WdSolver};
pub use threshold::{threshold_top_k, MaintainedIndex, TaInstrumentation, TaSource};
pub use topk::{top_k_indices, TopK};
