//! The [`WdSolver`] trait: a uniform, allocation-amortising interface over
//! every winner-determination method.
//!
//! Each of the paper's Section V methods is exposed as a struct owning its
//! own scratch state (dual potentials, heaps, sub-matrices, spanning-tree
//! bookkeeping). Constructing a solver once and calling
//! [`WdSolver::solve`] per auction keeps the hot path free of per-auction
//! allocation: the revenue matrix is filled in place by the caller and the
//! assignment is written into a caller-owned buffer.
//!
//! Implementations in this workspace:
//!
//! * [`HungarianSolver`](crate::hungarian::HungarianSolver) — method **H**;
//! * [`ReducedSolver`](crate::reduced::ReducedSolver) — method **RH**;
//! * [`ParallelReducedSolver`](crate::parallel::ParallelReducedSolver) —
//!   method **RH** with threaded top-k aggregation;
//! * `NetworkSimplexSolver` (in `ssa_simplex`) — method **LP**.
//!
//! The free functions ([`crate::max_weight_assignment`],
//! [`crate::reduced_assignment`], …) remain as one-shot conveniences; they
//! construct a fresh solver per call.

use crate::matrix::{Assignment, RevenueMatrix};

/// A winner-determination algorithm with reusable internal scratch state.
///
/// The contract shared by all implementations:
///
/// * `solve` resets `out` to the matrix's slot count and writes a
///   maximum-weight partial assignment into it (identical total weight
///   across all implementations, up to floating-point tolerance);
/// * no per-call allocation once the solver's buffers have warmed up to the
///   problem size (growing to a larger `n`/`k` may allocate once);
/// * solvers are `Send`, so a sharded serving layer can move them across
///   threads; they are **not** `Sync` — one solver per lane.
pub trait WdSolver: std::fmt::Debug + Send {
    /// A short static label for logs and benchmark output.
    fn name(&self) -> &'static str;

    /// Solves winner determination for `revenue`, writing the result into
    /// `out` (which is reset to `revenue.num_slots()` slots first).
    fn solve(&mut self, revenue: &RevenueMatrix, out: &mut Assignment);

    /// One-shot convenience: solve into a freshly allocated [`Assignment`].
    fn solve_alloc(&mut self, revenue: &RevenueMatrix) -> Assignment {
        let mut out = Assignment::empty(revenue.num_slots());
        self.solve(revenue, &mut out);
        out
    }

    /// Number of advertisers the most recent [`WdSolver::solve`] call
    /// actually considered, when the solver prunes the matrix first
    /// ([`PrunedSolver`](crate::pruned::PrunedSolver), the reduced methods).
    /// `None` means the solver always works on the full matrix.
    fn last_candidates(&self) -> Option<usize> {
        None
    }
}

/// The trait-object form used by engines that pick a method at runtime.
pub type BoxedWdSolver = Box<dyn WdSolver>;

impl WdSolver for BoxedWdSolver {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn solve(&mut self, revenue: &RevenueMatrix, out: &mut Assignment) {
        self.as_mut().solve(revenue, out);
    }

    fn last_candidates(&self) -> Option<usize> {
        self.as_ref().last_candidates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::HungarianSolver;
    use crate::matrix::RevenueMatrix;

    /// Compile-time guard: every solver must stay `Send` (the trait
    /// requires it) so sharded serving layers can move solvers across
    /// threads. A non-`Send` field added to any implementation breaks
    /// this test at compile time.
    #[test]
    fn solvers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HungarianSolver>();
        assert_send::<crate::reduced::ReducedSolver>();
        assert_send::<crate::parallel::ParallelReducedSolver>();
        assert_send::<BoxedWdSolver>();
    }

    #[test]
    fn boxed_solver_delegates() {
        let mut boxed: BoxedWdSolver = Box::new(HungarianSolver::new());
        assert_eq!(boxed.name(), "hungarian");
        let m = RevenueMatrix::from_rows(&[vec![3.0, 1.0]]);
        let a = boxed.solve_alloc(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0), None]);
    }

    #[test]
    fn solve_alloc_resets_out_dimensions() {
        let mut solver = HungarianSolver::new();
        let m = RevenueMatrix::from_rows(&[vec![3.0]]);
        let mut out = Assignment::empty(5);
        out.total_weight = 99.0;
        solver.solve(&m, &mut out);
        assert_eq!(out.slot_to_adv.len(), 1);
        assert_eq!(out.total_weight, 3.0);
    }
}
