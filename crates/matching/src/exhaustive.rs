//! Brute-force reference solvers, used to validate the fast algorithms.
//!
//! Section III-F notes that without structural assumptions "winners can be
//! determined by a brute force algorithm that considers each of the possible
//! `(n choose k) k!` assignments" — this module is that algorithm, kept
//! deliberately simple and obviously correct.

use crate::matrix::{Assignment, RevenueMatrix, EXCLUDED};

/// Exhaustively searches all partial injective assignments of slots to
/// advertisers and returns one with maximum total weight.
///
/// # Panics
///
/// Panics if the instance is too large to enumerate (`n > 10` or `k > 6`):
/// this is a test oracle, not a production solver.
pub fn brute_force_assignment(matrix: &RevenueMatrix) -> Assignment {
    let n = matrix.num_advertisers();
    let k = matrix.num_slots();
    assert!(n <= 10 && k <= 6, "brute force limited to tiny instances");

    let mut best = Assignment::empty(k);
    let mut current: Vec<Option<usize>> = vec![None; k];
    let mut used = vec![false; n];

    fn recurse(
        matrix: &RevenueMatrix,
        slot: usize,
        weight: f64,
        current: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
        best: &mut Assignment,
    ) {
        let k = matrix.num_slots();
        if slot == k {
            if weight > best.total_weight {
                *best = Assignment {
                    slot_to_adv: current.clone(),
                    total_weight: weight,
                };
            }
            return;
        }
        // Option 1: leave the slot empty.
        current[slot] = None;
        recurse(matrix, slot + 1, weight, current, used, best);
        // Option 2: try each unused advertiser with a usable edge.
        for adv in 0..matrix.num_advertisers() {
            if used[adv] {
                continue;
            }
            let w = matrix.get(adv, slot);
            if w == EXCLUDED {
                continue;
            }
            used[adv] = true;
            current[slot] = Some(adv);
            recurse(matrix, slot + 1, weight + w, current, used, best);
            current[slot] = None;
            used[adv] = false;
        }
    }

    recurse(matrix, 0, 0.0, &mut current, &mut used, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        let m = RevenueMatrix::from_rows(&[vec![5.0]]);
        let a = brute_force_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![Some(0)]);
        assert_eq!(a.total_weight, 5.0);

        let empty = RevenueMatrix::zeros(0, 2);
        let a = brute_force_assignment(&empty);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn prefers_empty_over_negative() {
        let m = RevenueMatrix::from_rows(&[vec![-1.0]]);
        let a = brute_force_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None]);
    }

    #[test]
    fn respects_exclusions() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED, 2.0]]);
        let a = brute_force_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "tiny")]
    fn large_instances_rejected() {
        let m = RevenueMatrix::zeros(11, 2);
        let _ = brute_force_assignment(&m);
    }
}
