//! Regenerates every figure of the paper's evaluation (and the
//! illustrative tables) as text output.
//!
//! Usage:
//!
//! ```text
//! reproduce [fig12|fig13|tables|all] [--quick]
//! ```
//!
//! `--quick` shrinks advertiser counts and auction counts so the whole run
//! finishes in seconds; the default mirrors the paper's scales (Figure 12:
//! up to 5000 advertisers, 100 auctions per point; Figure 13: up to 20000
//! advertisers, 1000 auctions per point).

use ssa_bench::{format_table, measure_series};
use ssa_bidlang::{BidsTable, Formula, Money, SlotId};
use ssa_core::prob::ClickModel;
use ssa_matching::{reduced_assignment, RevenueMatrix};
use ssa_workload::Method;

const USAGE: &str = "\
reproduce — regenerate the paper's figures as text output

Usage: reproduce [fig12|fig13|tables|all] [--quick]

Targets:
  fig12    winner-determination time per auction (LP/H/RH/RHTALU, k = 15)
  fig13    RH vs RHTALU at larger advertiser counts
  tables   the illustrative tables of Figures 1-11
  all      everything above (default)

Options:
  --quick  shrink advertiser/auction counts so the run finishes in seconds
  --help   print this message";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with('-') && *a != "--quick") {
        eprintln!("unknown option {flag:?}\n{USAGE}");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    match what {
        "fig12" => fig12(quick),
        "fig13" => fig13(quick),
        "tables" => tables(),
        "all" => {
            tables();
            fig12(quick);
            fig13(quick);
        }
        other => {
            eprintln!("unknown target {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Figure 12: time per auction for LP / H / RH / RHTALU, k = 15 slots,
/// averaged over 100 auctions, advertiser counts up to 5000.
fn fig12(quick: bool) {
    let counts: Vec<usize> = if quick {
        vec![250, 500, 1000]
    } else {
        vec![500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000]
    };
    let auctions = if quick { 20 } else { 100 };
    let methods = Method::ALL;
    let series: Vec<_> = methods
        .iter()
        .map(|&m| measure_series(m, &counts, auctions, auctions / 10 + 1, 4242))
        .collect();
    print!(
        "{}",
        format_table(
            "Figure 12 — Winner Determination Performance (ms per auction, k = 15)",
            &methods,
            &series,
        )
    );
    println!();
}

/// Figure 13: RH vs RHTALU, averaged over 1000 auctions, up to 20000
/// advertisers.
fn fig13(quick: bool) {
    let counts: Vec<usize> = if quick {
        vec![1000, 2000, 4000]
    } else {
        vec![
            2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000, 20000,
        ]
    };
    let auctions = if quick { 50 } else { 1000 };
    let methods = [Method::Rh, Method::Rhtalu];
    let series: Vec<_> = methods
        .iter()
        .map(|&m| measure_series(m, &counts, auctions, auctions / 10 + 1, 4243))
        .collect();
    print!(
        "{}",
        format_table(
            "Figure 13 — Reducing Program Evaluation (ms per auction, k = 15)",
            &methods,
            &series,
        )
    );
    println!();
}

/// Figures 1–11: the paper's illustrative tables, regenerated from the
/// library's own data structures.
fn tables() {
    println!("# Figure 1 — Single-feature valuation");
    println!("Click value: {}", Money::from_cents(3));
    println!();

    println!("# Figure 3 — Bids table");
    print!("{}", BidsTable::figure3());
    println!();

    println!("# Figure 6 — Bids table emitted by the Equalize-ROI program");
    let fig6 = BidsTable::new(vec![
        (
            Formula::click() & Formula::slot(SlotId::new(1)),
            Money::from_cents(4),
        ),
        (Formula::click(), Money::ZERO),
    ]);
    print!("{fig6}");
    println!();

    println!("# Figure 7 — Non-separable click probabilities");
    print_click_model(&ClickModel::figure7());
    println!("separable: {}", ClickModel::figure7().is_separable(1e-9));
    println!();

    println!("# Figure 8 — Separable click probabilities");
    print_click_model(&ClickModel::figure8());
    println!("separable: {}", ClickModel::figure8().is_separable(1e-9));
    println!();

    println!("# Figures 9–11 — Revenue matrix, reduction, and matching");
    let names = ["Nike", "Adidas", "Reebok", "Sketchers"];
    let matrix = RevenueMatrix::from_rows(&[
        vec![9.0, 5.0],
        vec![8.0, 7.0],
        vec![7.0, 6.0],
        vec![7.0, 4.0],
    ]);
    print!("{matrix}");
    let solution = reduced_assignment(&matrix);
    let kept: Vec<&str> = solution.candidates.iter().map(|&i| names[i]).collect();
    println!("reduced graph keeps: {}", kept.join(", "));
    for (j, adv) in solution.assignment.slot_to_adv.iter().enumerate() {
        if let Some(a) = adv {
            println!("slot {} -> {}", j + 1, names[*a]);
        }
    }
    println!("expected revenue: {}", solution.assignment.total_weight);
    println!();
}

fn print_click_model(m: &ClickModel) {
    for i in 0..m.num_advertisers() {
        for j in 0..m.num_slots() {
            print!("{:>6.2}", m.p_click(i, SlotId::from_index0(j)));
        }
        println!();
    }
}
