//! Regenerates every figure of the paper's evaluation (and the
//! illustrative tables) as text output.
//!
//! Usage:
//!
//! ```text
//! reproduce [fig12|fig13|tables|all] [--quick]
//! ```
//!
//! Single-run mode (`--method`) additionally accepts `--pruned` to route
//! winner determination through the top-k `PrunedSolver` wrapper — same
//! auction outcomes, smaller solves.
//!
//! `--quick` shrinks advertiser counts and auction counts so the whole run
//! finishes in seconds; the default mirrors the paper's scales (Figure 12:
//! up to 5000 advertisers, 100 auctions per point; Figure 13: up to 20000
//! advertisers, 1000 auctions per point).

use ssa_bench::{
    format_table, measure_method, measure_method_durable, measure_method_remote,
    measure_method_sharded, measure_method_targeted, measure_method_workload, measure_programmed,
    measure_series,
};
use ssa_bidlang::{BidsTable, Formula, Money, SlotId};
use ssa_core::prob::ClickModel;
use ssa_core::sharded::parse_shards;
use ssa_core::{PricingScheme, WdMethod};
use ssa_matching::{reduced_assignment, RevenueMatrix};
use ssa_workload::{Method, Strategy, WorkloadShape};

const USAGE: &str = "\
reproduce — regenerate the paper's figures as text output

Usage: reproduce [fig12|fig13|tables|all] [--quick]
       reproduce --method <lp|h|rh|rhp:<threads>> [--json] [--quick]
                 [--shards <n>] [--load <queries>] [--pruned] [--durable]
                 [--strategy <native|sql|sql-reparse>]
                 [--server <host:port>]
       reproduce --strategy <native|sql|sql-reparse> [--json] [--quick]
       reproduce --workload <uniform|zipf:<s>|flash|churn> [--json] [--quick]
                 [--shards <n>] [--load <queries>] [--pruned]
       reproduce --targeted [--json] [--quick] [--shards <n>]
                 [--load <queries>] [--pruned]
       reproduce --list-methods

Targets:
  fig12    winner-determination time per auction (LP/H/RH/RHTALU, k = 15)
  fig13    RH vs RHTALU at larger advertiser counts
  tables   the illustrative tables of Figures 1-11
  all      everything above (default)

Options:
  --method <m>    measure one winner-determination method on the Marketplace
                  serve_batch pipeline instead of printing figures
  --shards <n>    with --method, serve through a ShardedMarketplace with n
                  worker shards (n >= 1) instead of the single-threaded
                  facade
  --load <q>      with --method, serve q timed queries (q >= 1) instead of
                  the built-in auction count — the load-generator knob
  --pruned        with --method/--strategy, solve on the union of each
                  slot's top-k bidders (ties kept) instead of the full
                  advertiser set — bit-identical outcomes, smaller solves
  --durable       with --method, attach a write-ahead log to the sharded
                  run (a throw-away data directory under the system temp
                  dir): every mutation and batch is journalled while the
                  clock runs, and after the run the store is recovered and
                  verified bit-identical to the served marketplace. The
                  output gains a recovery line; the JSON emits a second
                  {\"metric\":\"recovery\",...} object
  --strategy <s>  measure the *programmed* Section II-B population instead
                  of the static per-click one: every advertiser a
                  keyword-local Figure 5 ROI program, run natively
                  (native), as a SQL bidding program on prepared
                  statements (sql), or as the reparse-per-round SQL
                  baseline (sql-reparse). Implies single-run mode; the
                  method defaults to rh when --method is omitted
  --workload <w>  swap the round-robin query stream for a hostile one:
                  uniform (seeded uniform draws), zipf:<s> (rank-frequency
                  skew with exponent s > 0, e.g. zipf:1.1), flash (a flash
                  crowd pinning the middle half of the stream to one hot
                  keyword — one shard), or churn (uniform queries while
                  advertisers exhaust budgets, rebid, and return
                  mid-stream). Implies single-run mode (the method
                  defaults to rh); the output gains a per-shard skew
                  summary and the JSON a \"shard_skew\" object
  --targeted      serve the *targeted* Section V population: every even
                  advertiser's campaigns carry the targeting program
                  device = 'mobile', and the stream alternates mobile and
                  desktop queries, so half the queries exclude half the
                  advertisers before the matrix fill. Implies single-run
                  mode (the method defaults to rh); the JSON gains
                  \"targeted\":true
  --server <a>    with --method, serve the run through a running ssa-server
                  at <a> (host:port) over the ssa_net wire protocol instead
                  of in process; --shards sets the server-side shard count
                  (default 1). Bit-identical outcomes to the in-process
                  run; the JSON gains \"server\":\"<a>\"
  --list-methods  print the accepted --method names with their paper
                  sections, then exit
  --json          with --method, emit one machine-readable JSON object
  --quick         shrink advertiser/auction counts so the run finishes in
                  seconds
  --help          print this message";

const METHODS: &str = "\
lp        winner-determination linear program, network simplex (Section III-B)
h         Hungarian algorithm on the full bipartite graph (Section III-D)
rh        reduced bipartite graph (Section III-E)
rhp:<t>   rh with parallel tree aggregation over <t> threads (Section III-E;
          the thread count is required — bare rhp is rejected)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--list-methods") {
        println!("{METHODS}");
        return;
    }
    let method = match parse_method_flag(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let shards = match parse_value_flag(&args, "--shards", parse_shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let load = match parse_value_flag(&args, "--load", parse_load) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let strategy = match parse_value_flag(&args, "--strategy", |v| {
        v.parse::<Strategy>().map_err(|e| e.to_string())
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match parse_value_flag(&args, "--server", ssa_net::parse_addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let workload = match parse_value_flag(&args, "--workload", |v| {
        v.parse::<WorkloadShape>().map_err(|e| e.to_string())
    }) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Walk the arguments once: reject unknown flags and find the first
    // positional target (skipping the value-carrying flags' values).
    let value_flag = |a: &str| {
        a == "--method"
            || a == "--shards"
            || a == "--load"
            || a == "--strategy"
            || a == "--server"
            || a == "--workload"
    };
    let known_flag = |a: &str| {
        a == "--quick"
            || a == "--json"
            || a == "--pruned"
            || a == "--durable"
            || a == "--targeted"
            || value_flag(a)
    };
    let mut target: Option<&str> = None;
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if value_flag(a) {
            skip_value = true;
            continue;
        }
        if a.starts_with('-') {
            if !known_flag(a) {
                eprintln!("unknown option {a:?}\n{USAGE}");
                std::process::exit(2);
            }
            continue;
        }
        target.get_or_insert(a.as_str());
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let pruned = args.iter().any(|a| a == "--pruned");
    let durable = args.iter().any(|a| a == "--durable");
    let targeted = args.iter().any(|a| a == "--targeted");
    // --strategy/--workload/--targeted imply single-run mode with the rh
    // default method.
    let single_run = method.is_some() || strategy.is_some() || workload.is_some() || targeted;
    if json && !single_run {
        eprintln!("--json requires --method or --strategy\n{USAGE}");
        std::process::exit(2);
    }
    if (shards.is_some() || load.is_some() || pruned) && !single_run {
        eprintln!("--shards/--load/--pruned require --method or --strategy\n{USAGE}");
        std::process::exit(2);
    }
    if server.is_some() && method.is_none() {
        eprintln!("--server requires --method\n{USAGE}");
        std::process::exit(2);
    }
    if server.is_some() && strategy.is_some() {
        eprintln!(
            "--server cannot be combined with --strategy: programmed populations \
             run in process only\n{USAGE}"
        );
        std::process::exit(2);
    }
    if durable && method.is_none() {
        eprintln!("--durable requires --method\n{USAGE}");
        std::process::exit(2);
    }
    if durable && (server.is_some() || strategy.is_some()) {
        eprintln!(
            "--durable cannot be combined with --server or --strategy: the journal \
             attaches to the in-process sharded run only\n{USAGE}"
        );
        std::process::exit(2);
    }
    if workload.is_some() && targeted {
        eprintln!(
            "--workload cannot be combined with --targeted: pick one population \
             per run\n{USAGE}"
        );
        std::process::exit(2);
    }
    if (workload.is_some() || targeted) && (server.is_some() || strategy.is_some() || durable) {
        eprintln!(
            "--workload/--targeted cannot be combined with --server, --strategy, \
             or --durable: hostile and targeted runs serve the in-process sharded \
             marketplace only\n{USAGE}"
        );
        std::process::exit(2);
    }

    if single_run {
        if let Some(target) = target {
            eprintln!("--method/--strategy cannot be combined with target {target:?}\n{USAGE}");
            std::process::exit(2);
        }
        let method = method.unwrap_or(WdMethod::Reduced);
        single_method(
            method, json, quick, shards, load, strategy, server, pruned, durable, workload,
            targeted,
        );
        return;
    }

    match target.unwrap_or("all") {
        "fig12" => fig12(quick),
        "fig13" => fig13(quick),
        "tables" => tables(),
        "all" => {
            tables();
            fig12(quick);
            fig13(quick);
        }
        other => {
            eprintln!("unknown target {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Extracts `--method <m>` from the argument list, if present.
fn parse_method_flag(args: &[String]) -> Result<Option<WdMethod>, String> {
    parse_value_flag(args, "--method", |v| {
        v.parse::<WdMethod>().map_err(|e| e.to_string())
    })
}

/// Parses `--load`: the same positive-count contract as `--shards`
/// (delegating to `ssa_core::sharded::parse_shards` for the trim / parse /
/// reject-zero behaviour), with the error text renamed to the flag's noun.
fn parse_load(s: &str) -> Result<usize, String> {
    use ssa_core::sharded::ParseShardsError;
    parse_shards(s).map_err(|e| match e {
        ParseShardsError::Invalid(raw) => format!("invalid load (query count) {raw:?}"),
        ParseShardsError::Zero => "load (query count) must be positive".to_string(),
    })
}

/// Extracts `<flag> <value>` from the argument list, if present, running
/// the flag's typed parser on the value.
fn parse_value_flag<T, E: std::fmt::Display>(
    args: &[String],
    flag: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Option<T>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let value = args
        .get(pos + 1)
        .ok_or_else(|| format!("{flag} requires a value"))?;
    parse(value).map(Some).map_err(|e| e.to_string())
}

/// Single-run mode: one batched throughput run on the Section V workload
/// — through the single-threaded `Marketplace` facade (per-keyword
/// persistent engines, `serve_batch` over a round-robin multi-keyword
/// stream), or through the multi-threaded `ShardedMarketplace` when
/// `--shards` is given — reported as text or JSON (for `BENCH_*.json`
/// tracking). `--load` overrides the timed query count, turning the mode
/// into a load generator. `--strategy` swaps the static per-click
/// population for the programmed Section II-B one (native vs SQL ROI
/// programs), which is how CI tracks the SQL interpreter's overhead.
/// `--server` routes the whole run through a live `ssa-server` over the
/// ssa_net wire protocol instead — bit-identical outcomes, real sockets.
/// `--durable` attaches a write-ahead log to the sharded run and verifies
/// post-run recovery, reporting the replay cost alongside the throughput.
/// `--workload` swaps the round-robin stream for a hostile shape (Zipf
/// skew, a flash crowd, or advertiser churn) and reports the per-shard
/// skew it induced; `--targeted` serves the targeted population whose
/// campaigns carry attribute-targeting programs.
#[allow(clippy::too_many_arguments)] // one parameter per CLI flag
fn single_method(
    method: WdMethod,
    json: bool,
    quick: bool,
    shards: Option<usize>,
    load: Option<usize>,
    strategy: Option<Strategy>,
    server: Option<std::net::SocketAddr>,
    pruned: bool,
    durable: bool,
    workload: Option<WorkloadShape>,
    targeted: bool,
) {
    let (n, default_auctions) = if quick { (250, 50) } else { (1000, 200) };
    let auctions = load.unwrap_or(default_auctions);
    let warmup = auctions / 10 + 1;
    let mut recovery = None;
    let run = if durable {
        let dir =
            std::env::temp_dir().join(format!("ssa-reproduce-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (run, report) = measure_method_durable(
            &dir,
            method,
            PricingScheme::Gsp,
            n,
            auctions,
            warmup,
            4242,
            shards.unwrap_or(1),
            pruned,
        );
        std::fs::remove_dir_all(&dir).ok();
        recovery = Some(report);
        run
    } else if let Some(shape) = workload {
        measure_method_workload(
            method,
            PricingScheme::Gsp,
            n,
            auctions,
            warmup,
            4242,
            shards.unwrap_or(1),
            pruned,
            shape,
        )
    } else if targeted {
        measure_method_targeted(
            method,
            PricingScheme::Gsp,
            n,
            auctions,
            warmup,
            4242,
            shards.unwrap_or(1),
            pruned,
        )
    } else {
        dispatch_plain(
            method, quick, shards, load, strategy, server, pruned, n, auctions, warmup,
        )
    };
    if json {
        println!("{}", run.to_json());
        if let Some(report) = &recovery {
            println!("{}", report.to_json());
        }
    } else {
        print_run(&run);
        if let Some(report) = &recovery {
            println!(
                "recovery: {} wal records replayed in {:.2} ms ({} snapshot bytes)",
                report.wal_records, report.replay_ms, report.snapshot_bytes,
            );
        }
    }
}

/// The non-durable single-run dispatch: remote, programmed, sharded, or
/// the single-threaded facade, by flag.
#[allow(clippy::too_many_arguments)] // one parameter per CLI flag
fn dispatch_plain(
    method: WdMethod,
    quick: bool,
    shards: Option<usize>,
    load: Option<usize>,
    strategy: Option<Strategy>,
    server: Option<std::net::SocketAddr>,
    pruned: bool,
    n: usize,
    auctions: usize,
    warmup: usize,
) -> ssa_bench::MethodRun {
    let _ = (quick, load);
    match (server, strategy) {
        (Some(addr), _) => {
            let sharding = shards.unwrap_or(1);
            match measure_method_remote(
                addr,
                method,
                PricingScheme::Gsp,
                n,
                auctions,
                warmup,
                4242,
                sharding,
                pruned,
            ) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("error: remote run against {addr} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        (None, Some(strategy)) => {
            measure_programmed(strategy, method, n, auctions, warmup, 4242, shards, pruned)
        }
        (None, None) => match shards {
            Some(shards) => measure_method_sharded(
                method,
                PricingScheme::Gsp,
                n,
                auctions,
                warmup,
                4242,
                shards,
                pruned,
            ),
            None => measure_method(
                method,
                PricingScheme::Gsp,
                n,
                auctions,
                warmup,
                4242,
                pruned,
            ),
        },
    }
}

/// Prints the human-readable form of a single run.
fn print_run(run: &ssa_bench::MethodRun) {
    {
        let sharding = match run.shards {
            Some(s) => format!(", {s} shards"),
            None => String::new(),
        };
        let population = match run.strategy {
            Some(s) => format!(", {s} programs"),
            None => String::new(),
        };
        let pruning = if run.pruned { ", pruned" } else { "" };
        let journalled = if run.durable { ", journalled" } else { "" };
        let shaping = match run.workload {
            Some(shape) => format!(", {shape} stream"),
            None => String::new(),
        };
        let targeting = if run.targeted { ", targeted" } else { "" };
        let via = match &run.server {
            Some(addr) => format!(", via {addr}"),
            None => String::new(),
        };
        println!(
            "method {} ({} pricing{}{}{}{}{}{}{}): n = {}, k = {}, {} auctions in {:.2} ms \
             ({:.0} auctions/sec, {} clicks, {} realized)",
            run.method,
            run.pricing,
            sharding,
            population,
            pruning,
            journalled,
            shaping,
            targeting,
            via,
            run.advertisers,
            run.slots,
            run.auctions,
            ssa_bench::ms(run.elapsed),
            run.auctions_per_sec(),
            run.report.clicks,
            run.report.realized_revenue,
        );
        let p = run.report.phases;
        println!(
            "phases: program-eval {:.2} ms, matrix-fill {:.2} ms, solve {:.2} ms, \
             pricing {:.2} ms, settlement {:.2} ms ({} solves, {} warm, \
             avg {:.1} candidates)",
            p.program_eval_ns as f64 / 1e6,
            p.matrix_fill_ns as f64 / 1e6,
            p.solve_ns as f64 / 1e6,
            p.pricing_ns as f64 / 1e6,
            p.settlement_ns as f64 / 1e6,
            p.solves,
            p.warm_solves,
            p.avg_candidates(),
        );
        if let Some(skew) = &run.skew {
            println!(
                "skew: {:?} queries per shard (p50 {}, p99 {}, max/mean {:.3})",
                skew.queries_per_shard,
                skew.p50(),
                skew.p99(),
                skew.max_over_mean(),
            );
        }
        if let (Some(mode), Some(stats)) = (run.planner_mode, run.planner) {
            println!(
                "planner {mode:?}: {} index hits, {} rows scanned, {} plans cached",
                stats.index_hits, stats.rows_scanned, stats.plans_cached,
            );
        }
    }
}

/// Figure 12: time per auction for LP / H / RH / RHTALU, k = 15 slots,
/// averaged over 100 auctions, advertiser counts up to 5000.
fn fig12(quick: bool) {
    let counts: Vec<usize> = if quick {
        vec![250, 500, 1000]
    } else {
        vec![500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000]
    };
    let auctions = if quick { 20 } else { 100 };
    let methods = Method::ALL;
    let series: Vec<_> = methods
        .iter()
        .map(|&m| measure_series(m, &counts, auctions, auctions / 10 + 1, 4242))
        .collect();
    print!(
        "{}",
        format_table(
            "Figure 12 — Winner Determination Performance (ms per auction, k = 15)",
            &methods,
            &series,
        )
    );
    println!();
}

/// Figure 13: RH vs RHTALU, averaged over 1000 auctions, up to 20000
/// advertisers.
fn fig13(quick: bool) {
    let counts: Vec<usize> = if quick {
        vec![1000, 2000, 4000]
    } else {
        vec![
            2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000, 20000,
        ]
    };
    let auctions = if quick { 50 } else { 1000 };
    let methods = [Method::Rh, Method::Rhtalu];
    let series: Vec<_> = methods
        .iter()
        .map(|&m| measure_series(m, &counts, auctions, auctions / 10 + 1, 4243))
        .collect();
    print!(
        "{}",
        format_table(
            "Figure 13 — Reducing Program Evaluation (ms per auction, k = 15)",
            &methods,
            &series,
        )
    );
    println!();
}

/// Figures 1–11: the paper's illustrative tables, regenerated from the
/// library's own data structures.
fn tables() {
    println!("# Figure 1 — Single-feature valuation");
    println!("Click value: {}", Money::from_cents(3));
    println!();

    println!("# Figure 3 — Bids table");
    print!("{}", BidsTable::figure3());
    println!();

    println!("# Figure 6 — Bids table emitted by the Equalize-ROI program");
    let fig6 = BidsTable::new(vec![
        (
            Formula::click() & Formula::slot(SlotId::new(1)),
            Money::from_cents(4),
        ),
        (Formula::click(), Money::ZERO),
    ]);
    print!("{fig6}");
    println!();

    println!("# Figure 7 — Non-separable click probabilities");
    print_click_model(&ClickModel::figure7());
    println!("separable: {}", ClickModel::figure7().is_separable(1e-9));
    println!();

    println!("# Figure 8 — Separable click probabilities");
    print_click_model(&ClickModel::figure8());
    println!("separable: {}", ClickModel::figure8().is_separable(1e-9));
    println!();

    println!("# Figures 9–11 — Revenue matrix, reduction, and matching");
    let names = ["Nike", "Adidas", "Reebok", "Sketchers"];
    let matrix = RevenueMatrix::from_rows(&[
        vec![9.0, 5.0],
        vec![8.0, 7.0],
        vec![7.0, 6.0],
        vec![7.0, 4.0],
    ]);
    print!("{matrix}");
    let solution = reduced_assignment(&matrix);
    let kept: Vec<&str> = solution.candidates.iter().map(|&i| names[i]).collect();
    println!("reduced graph keeps: {}", kept.join(", "));
    for (j, adv) in solution.assignment.slot_to_adv.iter().enumerate() {
        if let Some(a) = adv {
            println!("slot {} -> {}", j + 1, names[*a]);
        }
    }
    println!("expected revenue: {}", solution.assignment.total_weight);
    println!();
}

fn print_click_model(m: &ClickModel) {
    for i in 0..m.num_advertisers() {
        for j in 0..m.num_slots() {
            print!("{:>6.2}", m.p_click(i, SlotId::from_index0(j)));
        }
        println!();
    }
}
