//! # ssa-bench — the experiment harness
//!
//! Shared plumbing for regenerating the paper's figures: the `reproduce`
//! binary prints the numeric series behind Figures 12 and 13 (plus the
//! illustrative tables of Figures 1–11), and the Criterion benches measure
//! the same code paths with statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssa_workload::{Method, SectionVConfig, SectionVWorkload, Simulation};
use std::time::Duration;

/// One measured point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Number of advertisers.
    pub n: usize,
    /// Average time per auction in milliseconds.
    pub ms_per_auction: f64,
}

/// Measures `method` on the Section V workload for each advertiser count,
/// averaging over `auctions` auctions per point (after `warmup` auctions).
pub fn measure_series(
    method: Method,
    advertiser_counts: &[usize],
    auctions: usize,
    warmup: usize,
    seed: u64,
) -> Vec<SeriesPoint> {
    advertiser_counts
        .iter()
        .map(|&n| {
            let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
            let mut sim = Simulation::new(workload, method);
            sim.run_timed(warmup);
            let elapsed = sim.run_timed(auctions);
            SeriesPoint {
                n,
                ms_per_auction: elapsed.as_secs_f64() * 1000.0 / auctions as f64,
            }
        })
        .collect()
}

/// Formats a set of series as the aligned text table the `reproduce`
/// binary prints.
pub fn format_table(title: &str, methods: &[Method], series: &[Vec<SeriesPoint>]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# {title}").expect("infallible");
    write!(out, "{:>8}", "n").expect("infallible");
    for m in methods {
        write!(out, " {:>12}", m.label()).expect("infallible");
    }
    writeln!(out).expect("infallible");
    let points = series.first().map(|s| s.len()).unwrap_or(0);
    for row in 0..points {
        write!(out, "{:>8}", series[0][row].n).expect("infallible");
        for s in series {
            write!(out, " {:>12.4}", s[row].ms_per_auction).expect("infallible");
        }
        writeln!(out).expect("infallible");
    }
    out
}

/// Pretty-prints a duration in ms for logging.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_measure_smoke() {
        let pts = measure_series(Method::Rh, &[30, 60], 5, 1, 3);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.ms_per_auction > 0.0));
        assert_eq!(pts[0].n, 30);
    }

    #[test]
    fn table_format() {
        let pts = vec![vec![SeriesPoint {
            n: 100,
            ms_per_auction: 1.5,
        }]];
        let t = format_table("Fig X", &[Method::Rh], &pts);
        assert!(t.contains("Fig X"));
        assert!(t.contains("RH"));
        assert!(t.contains("100"));
        assert!(t.contains("1.5000"));
    }
}
