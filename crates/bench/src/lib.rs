//! # ssa-bench — the experiment harness
//!
//! Shared plumbing for regenerating the paper's figures: the `reproduce`
//! binary prints the numeric series behind Figures 12 and 13 (plus the
//! illustrative tables of Figures 1–11), and the Criterion benches measure
//! the same code paths with statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssa_bidlang::{Money, SlotId};
use ssa_core::marketplace::{CampaignId, CampaignSpec, Marketplace, QueryRequest};
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::{
    AuctionEngine, BatchReport, EngineConfig, PricingScheme, TableBidder, UserAttrs, WdMethod,
};
use ssa_minidb::{PlannerMode, PlannerStats};
use ssa_net::{market_config_for, populate_remote, Client, NetError};
use ssa_workload::{
    programmed_market, programmed_sharded_market, ChurnAction, Method, SectionVConfig,
    SectionVWorkload, ShardSkew, Simulation, Strategy, WorkloadShape,
};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One measured point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Number of advertisers.
    pub n: usize,
    /// Average time per auction in milliseconds.
    pub ms_per_auction: f64,
}

/// Measures `method` on the Section V workload for each advertiser count,
/// averaging over `auctions` auctions per point (after `warmup` auctions).
pub fn measure_series(
    method: Method,
    advertiser_counts: &[usize],
    auctions: usize,
    warmup: usize,
    seed: u64,
) -> Vec<SeriesPoint> {
    advertiser_counts
        .iter()
        .map(|&n| {
            let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
            let mut sim = Simulation::new(workload, method);
            sim.run_timed(warmup);
            let elapsed = sim.run_timed(auctions);
            SeriesPoint {
                n,
                ms_per_auction: elapsed.as_secs_f64() * 1000.0 / auctions as f64,
            }
        })
        .collect()
}

/// Formats a set of series as the aligned text table the `reproduce`
/// binary prints.
pub fn format_table(title: &str, methods: &[Method], series: &[Vec<SeriesPoint>]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# {title}").expect("infallible");
    write!(out, "{:>8}", "n").expect("infallible");
    for m in methods {
        write!(out, " {:>12}", m.label()).expect("infallible");
    }
    writeln!(out).expect("infallible");
    let points = series.first().map(|s| s.len()).unwrap_or(0);
    for row in 0..points {
        write!(out, "{:>8}", series[0][row].n).expect("infallible");
        for s in series {
            write!(out, " {:>12.4}", s[row].ms_per_auction).expect("infallible");
        }
        writeln!(out).expect("infallible");
    }
    out
}

/// Pretty-prints a duration in ms for logging.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Builds an [`AuctionEngine`] over a Section V population: per-click
/// [`TableBidder`]s with the workload's initial bids, the paper's
/// 15-slot click model, no purchases.
///
/// This is the low-level escape-hatch twin of [`section_v_market`], kept
/// for benches that measure the raw engine pipeline.
pub fn section_v_engine(n: usize, seed: u64, config: EngineConfig) -> AuctionEngine<TableBidder> {
    let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
    let bidders: Vec<TableBidder> = workload
        .bidders
        .iter()
        .map(|b| {
            let cents = b
                .keywords
                .iter()
                .map(|&(_, bid, _)| bid)
                .max()
                .unwrap_or(1)
                .max(1);
            TableBidder::per_click(Money::from_cents(cents))
        })
        .collect();
    let num_keywords = workload.config.num_keywords;
    AuctionEngine::new(
        bidders,
        workload.clicks,
        workload.purchases,
        num_keywords,
        config,
    )
}

/// Configures the marketplace builder shared by both serving flavours.
fn section_v_builder(
    workload: &SectionVWorkload,
    seed: u64,
    config: EngineConfig,
) -> ssa_core::MarketplaceBuilder {
    Marketplace::builder()
        .slots(workload.config.num_slots)
        .keywords(workload.config.num_keywords)
        .method(config.method)
        .pricing(config.pricing)
        .pruned(config.pruned)
        .warm_start(config.warm_start)
        .seed(seed ^ 0xD1CE_D1CE)
}

/// Logical cores available to this process — recorded in every
/// [`MethodRun`] so throughput rows from different machines are
/// comparable.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Registers the Section V population — one advertiser, one per-click
/// campaign per keyword at the workload-initial bid and click value — on a
/// marketplace. A macro rather than a function because [`Marketplace`] and
/// [`ShardedMarketplace`] share the control-plane API by name, not by
/// trait; both builders below expand the same population code.
macro_rules! populate_section_v {
    ($market:expr, $workload:expr) => {{
        let k = $workload.config.num_slots;
        for (i, b) in $workload.bidders.iter().enumerate() {
            let advertiser = $market.register_advertiser(format!("advertiser-{i}"));
            let click_probs: Vec<f64> = (0..k)
                .map(|j| $workload.clicks.p_click(i, SlotId::from_index0(j)))
                .collect();
            for (keyword, &(value, bid, _)) in b.keywords.iter().enumerate() {
                $market
                    .add_campaign(
                        advertiser,
                        keyword,
                        CampaignSpec::per_click(Money::from_cents(bid.max(0)))
                            .click_value(Money::from_cents(value))
                            .click_probs(click_probs.clone()),
                    )
                    .expect("Section V campaign is valid");
            }
        }
    }};
}

/// Builds a [`Marketplace`] over a Section V population: every advertiser
/// registers once and opens one per-click campaign per keyword (bidding its
/// workload-initial bid, valued at its click value), under the paper's
/// 15-slot click model with no purchases.
pub fn section_v_market(n: usize, seed: u64, config: EngineConfig) -> Marketplace {
    let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
    let mut market = section_v_builder(&workload, seed, config)
        .build()
        .expect("Section V configuration is valid");
    populate_section_v!(market, workload);
    market
}

/// Builds a [`ShardedMarketplace`] over the same Section V population as
/// [`section_v_market`], its keyword books partitioned across `shards`
/// worker shards. `section_config` controls the workload shape (use
/// [`SectionVConfig::paper`] for the paper's 15-slot / 10-keyword setup, or
/// a custom keyword count for shard-scaling experiments).
pub fn section_v_sharded_market(
    section_config: SectionVConfig,
    config: EngineConfig,
    shards: usize,
) -> ShardedMarketplace {
    let seed = section_config.seed;
    let workload = SectionVWorkload::generate(section_config);
    let mut market = section_v_builder(&workload, seed, config)
        .build_sharded(shards)
        .expect("Section V sharded configuration is valid");
    populate_section_v!(market, workload);
    market
}

/// Outcome of a single-method batched throughput run (the machine-readable
/// record behind `reproduce --method <m> --json`).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRun {
    /// Winner-determination method measured.
    pub method: WdMethod,
    /// Pricing scheme in force.
    pub pricing: PricingScheme,
    /// Advertiser count.
    pub advertisers: usize,
    /// Slot count.
    pub slots: usize,
    /// Shard count of the serving layer: `Some(n)` when the run went
    /// through `ShardedMarketplace` with `n` shards, `None` for the
    /// single-threaded `Marketplace` facade.
    pub shards: Option<usize>,
    /// Population flavour: `Some(strategy)` for the programmed Section
    /// II-B population ([`ssa_workload::sql`]), `None` for the static
    /// per-click Section V population.
    pub strategy: Option<Strategy>,
    /// Timed auctions (after warm-up).
    pub auctions: usize,
    /// Logical cores available to the process during the run.
    pub cores: usize,
    /// Whether the engines solved through the top-k
    /// [`PrunedSolver`](ssa_matching::PrunedSolver) wrapper.
    pub pruned: bool,
    /// Whether the run served with a write-ahead log attached
    /// ([`measure_method_durable`]) — `true` means every mutation and
    /// serve was journalled to disk while the clock ran.
    pub durable: bool,
    /// Traffic shape of the timed stream: `Some(shape)` for hostile-world
    /// runs ([`measure_method_workload`]), `None` for the legacy
    /// round-robin stream.
    pub workload: Option<WorkloadShape>,
    /// Per-shard queue-depth skew of the timed stream under
    /// keyword-affinity routing — recorded for shaped sharded runs,
    /// `None` otherwise.
    pub skew: Option<ShardSkew>,
    /// Whether the population carried targeting programs
    /// ([`measure_method_targeted`]): half the campaigns accept only
    /// mobile queries, so desktop queries drop them from the candidate
    /// set before the matrix fill.
    pub targeted: bool,
    /// Wall-clock time of the timed batch.
    pub elapsed: Duration,
    /// Aggregate auction outcomes of the timed batch.
    pub report: BatchReport,
    /// Address of the `ssa-server` the run was served through, for runs
    /// driven over the wire (`reproduce --server <addr>`); `None` for
    /// in-process runs.
    pub server: Option<String>,
    /// Planner mode of the campaign databases for programmed SQL runs
    /// (`None` for native programs and the static Section V population).
    /// `ForceScan` means the `SSA_MINIDB_FORCE_SCAN` A/B toggle was live.
    pub planner_mode: Option<PlannerMode>,
    /// Planner counters summed over every campaign database after the
    /// timed batch — shows whether auctions were answered by index probes
    /// (`index_hits`) or scans (`rows_scanned`).
    pub planner: Option<PlannerStats>,
}

impl MethodRun {
    /// Batched throughput in auctions per second.
    pub fn auctions_per_sec(&self) -> f64 {
        self.auctions as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Serialises the run as a single JSON object (stable keys, no
    /// dependencies) for `BENCH_*.json`-style tracking. `"shards"` is a
    /// number for sharded runs and `null` for the single-threaded facade;
    /// `"planner"` carries the mode and counters of the campaign
    /// databases for programmed SQL runs and is `null` otherwise.
    pub fn to_json(&self) -> String {
        let shards = self
            .shards
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string());
        let strategy = self
            .strategy
            .map(|s| format!("\"{s}\""))
            .unwrap_or_else(|| "null".to_string());
        let server = self
            .server
            .as_deref()
            .map(|a| format!("\"{a}\""))
            .unwrap_or_else(|| "null".to_string());
        let planner = match (self.planner_mode, self.planner) {
            (Some(mode), Some(stats)) => {
                let mode = match mode {
                    PlannerMode::Auto => "auto",
                    PlannerMode::ForceScan => "force_scan",
                };
                format!(
                    concat!(
                        "{{\"mode\":\"{}\",\"index_hits\":{},",
                        "\"rows_scanned\":{},\"plans_cached\":{}}}"
                    ),
                    mode, stats.index_hits, stats.rows_scanned, stats.plans_cached
                )
            }
            _ => "null".to_string(),
        };
        let workload = self
            .workload
            .map(|w| format!("\"{w}\""))
            .unwrap_or_else(|| "null".to_string());
        let skew = self
            .skew
            .as_ref()
            .map(|s| s.to_json())
            .unwrap_or_else(|| "null".to_string());
        let p = &self.report.phases;
        let phases = format!(
            concat!(
                "{{\"program_eval_ms\":{:.3},\"matrix_fill_ms\":{:.3},",
                "\"solve_ms\":{:.3},\"pricing_ms\":{:.3},",
                "\"settlement_ms\":{:.3},\"solves\":{},\"warm_solves\":{},",
                "\"avg_candidates\":{:.1}}}"
            ),
            p.program_eval_ns as f64 / 1e6,
            p.matrix_fill_ns as f64 / 1e6,
            p.solve_ns as f64 / 1e6,
            p.pricing_ns as f64 / 1e6,
            p.settlement_ns as f64 / 1e6,
            p.solves,
            p.warm_solves,
            p.avg_candidates(),
        );
        format!(
            concat!(
                "{{\"method\":\"{}\",\"pricing\":\"{}\",\"advertisers\":{},",
                "\"slots\":{},\"shards\":{},\"strategy\":{},\"server\":{},",
                "\"auctions\":{},\"elapsed_ms\":{:.3},",
                "\"auctions_per_sec\":{:.1},\"cores\":{},\"pruned\":{},",
                "\"durable\":{},\"workload\":{},\"targeted\":{},",
                "\"phases\":{},\"expected_revenue_cents\":{:.2},",
                "\"clicks\":{},\"realized_revenue_cents\":{},\"planner\":{},",
                "\"shard_skew\":{}}}"
            ),
            self.method,
            self.pricing,
            self.advertisers,
            self.slots,
            shards,
            strategy,
            server,
            self.auctions,
            ms(self.elapsed),
            self.auctions_per_sec(),
            self.cores,
            self.pruned,
            self.durable,
            workload,
            self.targeted,
            phases,
            self.report.expected_revenue,
            self.report.clicks,
            self.report.realized_revenue.cents(),
            planner,
            skew,
        )
    }
}

/// Measures one method's batched serving throughput on the Section V
/// workload, driven through the [`Marketplace`] facade: `warmup`
/// unmeasured auctions (building the per-keyword engines and filling their
/// persistent solver and matrix buffers), then `auctions` timed ones
/// served with [`Marketplace::serve_batch`] over a round-robin
/// multi-keyword query stream.
pub fn measure_method(
    method: WdMethod,
    pricing: PricingScheme,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    pruned: bool,
) -> MethodRun {
    let config = EngineConfig {
        method,
        pricing,
        pruned,
        ..EngineConfig::default()
    };
    let mut market = section_v_market(n, seed, config);
    let slots = market.num_slots();
    let keywords = market.num_keywords();
    let (elapsed, report) = timed_round_robin(keywords, auctions, warmup, |requests| {
        market
            .serve_batch(requests)
            .expect("round-robin keywords are in range")
            .total
    });
    MethodRun {
        method,
        pricing,
        advertisers: n,
        slots,
        shards: None,
        strategy: None,
        auctions,
        cores: available_cores(),
        pruned,
        durable: false,
        workload: None,
        skew: None,
        targeted: false,
        elapsed,
        report,
        server: None,
        planner_mode: None,
        planner: None,
    }
}

/// Measures one method's batched serving throughput through the
/// [`ShardedMarketplace`]: the load-generator twin of [`measure_method`].
/// The warm-up round builds every shard's per-keyword engines; the timed
/// round serves `auctions` queries with
/// [`ShardedMarketplace::serve_batch`], fanning the same round-robin
/// multi-keyword stream out across `shards` worker threads.
#[allow(clippy::too_many_arguments)] // the workload shape plus two toggles
pub fn measure_method_sharded(
    method: WdMethod,
    pricing: PricingScheme,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    shards: usize,
    pruned: bool,
) -> MethodRun {
    let config = EngineConfig {
        method,
        pricing,
        pruned,
        ..EngineConfig::default()
    };
    let mut market = section_v_sharded_market(SectionVConfig::paper(n, seed), config, shards);
    let slots = market.num_slots();
    let keywords = market.num_keywords();
    let (elapsed, report) = timed_round_robin(keywords, auctions, warmup, |requests| {
        market
            .serve_batch(requests)
            .expect("round-robin keywords are in range")
            .total
    });
    MethodRun {
        method,
        pricing,
        advertisers: n,
        slots,
        shards: Some(shards),
        strategy: None,
        auctions,
        cores: available_cores(),
        pruned,
        durable: false,
        workload: None,
        skew: None,
        targeted: false,
        elapsed,
        report,
        server: None,
        planner_mode: None,
        planner: None,
    }
}

/// Applies one churn event to a sharded marketplace. The plan's
/// coordinates are generated within the population's bounds, so failures
/// are harness bugs, not workload outcomes.
fn apply_churn(market: &mut ShardedMarketplace, event: &ssa_workload::ChurnEvent) {
    let id = CampaignId::from_parts(event.keyword, event.index);
    match event.action {
        ChurnAction::Exhaust => market
            .pause_campaign(id)
            .expect("churn coordinates are in range"),
        ChurnAction::Return => market
            .resume_campaign(id)
            .expect("churn coordinates are in range"),
        ChurnAction::Rebid { bid_cents } => market
            .update_bid(id, Money::from_cents(bid_cents))
            .expect("churn coordinates are in range"),
    }
}

/// Measures one method's batched serving throughput under a hostile-world
/// traffic shape: the same Section V population as
/// [`measure_method_sharded`], but the timed stream is drawn by `shape`
/// ([`WorkloadShape::query_stream`]) instead of round-robin — Zipf skew,
/// a flash crowd pinned to one shard, or advertiser churn applied
/// *while the clock runs* ([`WorkloadShape::churn_plan`]).
///
/// The run records the stream's per-shard queue-depth skew
/// ([`MethodRun::skew`]) next to the throughput, which is what the
/// perf-smoke CI row asserts on: a skewed stream must still serve, and
/// the imbalance must be visible in the report rather than averaged away.
#[allow(clippy::too_many_arguments)] // mirrors measure_method_sharded plus the shape
pub fn measure_method_workload(
    method: WdMethod,
    pricing: PricingScheme,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    shards: usize,
    pruned: bool,
    shape: WorkloadShape,
) -> MethodRun {
    let config = EngineConfig {
        method,
        pricing,
        pruned,
        ..EngineConfig::default()
    };
    let mut market = section_v_sharded_market(SectionVConfig::paper(n, seed), config, shards);
    let slots = market.num_slots();
    let keywords = market.num_keywords();
    // The stream seed is decoupled from the population seed so the shape
    // owns traffic randomness and the population stays comparable across
    // shapes.
    let stream = shape.query_stream(keywords, auctions.max(warmup), seed ^ 0x7AFF_1C5E);
    let requests: Vec<QueryRequest> = stream.iter().map(|&k| QueryRequest::new(k)).collect();
    market
        .serve_batch(&requests[..warmup])
        .expect("shaped keywords are in range");
    let plan = shape.churn_plan(keywords, n, auctions, seed);
    let start = Instant::now();
    let mut report = BatchReport::default();
    let mut served = 0usize;
    let mut next_event = 0usize;
    while served < auctions {
        let until = plan
            .events
            .get(next_event)
            .map(|e| e.after_query.clamp(served, auctions))
            .unwrap_or(auctions);
        if until > served {
            let segment = market
                .serve_batch(&requests[served..until])
                .expect("shaped keywords are in range");
            report.absorb(&segment.total);
            served = until;
        }
        while let Some(event) = plan.events.get(next_event) {
            if event.after_query > served {
                break;
            }
            apply_churn(&mut market, event);
            next_event += 1;
        }
    }
    let elapsed = start.elapsed();
    MethodRun {
        method,
        pricing,
        advertisers: n,
        slots,
        shards: Some(shards),
        strategy: None,
        auctions,
        cores: available_cores(),
        pruned,
        durable: false,
        workload: Some(shape),
        skew: Some(ShardSkew::from_stream(&stream[..auctions], shards)),
        targeted: false,
        elapsed,
        report,
        server: None,
        planner_mode: None,
        planner: None,
    }
}

/// Measures one method's batched serving throughput over a *targeted*
/// Section V population: every even-indexed advertiser's campaigns carry
/// the targeting program `device = 'mobile'`, and the round-robin stream
/// alternates mobile and desktop queries — so desktop queries exclude
/// half the advertisers from the candidate set before the matrix fill.
///
/// With `method = rh` the drop is visible in
/// [`PhaseStats::avg_candidates`](ssa_core::PhaseStats::avg_candidates)
/// (the perf-smoke CI row asserts it sits strictly below the advertiser
/// count), which certifies that targeting prunes work rather than merely
/// zeroing bids.
#[allow(clippy::too_many_arguments)] // mirrors measure_method_sharded
pub fn measure_method_targeted(
    method: WdMethod,
    pricing: PricingScheme,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    shards: usize,
    pruned: bool,
) -> MethodRun {
    let config = EngineConfig {
        method,
        pricing,
        pruned,
        ..EngineConfig::default()
    };
    let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
    let mut market = section_v_builder(&workload, seed, config)
        .build_sharded(shards)
        .expect("Section V sharded configuration is valid");
    let k = workload.config.num_slots;
    for (i, b) in workload.bidders.iter().enumerate() {
        let advertiser = market.register_advertiser(format!("advertiser-{i}"));
        let click_probs: Vec<f64> = (0..k)
            .map(|j| workload.clicks.p_click(i, SlotId::from_index0(j)))
            .collect();
        for (keyword, &(value, bid, _)) in b.keywords.iter().enumerate() {
            let mut spec = CampaignSpec::per_click(Money::from_cents(bid.max(0)))
                .click_value(Money::from_cents(value))
                .click_probs(click_probs.clone());
            if i % 2 == 0 {
                spec = spec.targeting("device = 'mobile'");
            }
            market
                .add_campaign(advertiser, keyword, spec)
                .expect("targeted Section V campaign is valid");
        }
    }
    let slots = market.num_slots();
    let keywords = market.num_keywords().max(1);
    let requests: Vec<QueryRequest> = (0..auctions.max(warmup))
        .map(|i| {
            let device = if i % 2 == 0 { "mobile" } else { "desktop" };
            QueryRequest::with_attrs(i % keywords, UserAttrs::new().device(device))
        })
        .collect();
    market
        .serve_batch(&requests[..warmup])
        .expect("round-robin keywords are in range");
    let start = Instant::now();
    let report = market
        .serve_batch(&requests[..auctions])
        .expect("round-robin keywords are in range")
        .total;
    let elapsed = start.elapsed();
    MethodRun {
        method,
        pricing,
        advertisers: n,
        slots,
        shards: Some(shards),
        strategy: None,
        auctions,
        cores: available_cores(),
        pruned,
        durable: false,
        workload: None,
        skew: None,
        targeted: true,
        elapsed,
        report,
        server: None,
        planner_mode: None,
        planner: None,
    }
}

/// Measures one method's batched serving throughput with a write-ahead
/// log attached: the same Section V population and round-robin stream as
/// [`measure_method_sharded`], but every control-plane mutation and every
/// timed batch is journalled to a [`ssa_durable::Durability`] store in
/// `dir` while the clock runs — the engine behind `reproduce --durable`,
/// which is how CI tracks the journalling overhead next to the plain
/// sharded row.
///
/// After the timed batch the store is recovered from disk and the
/// recovered marketplace is asserted **bit-identical** to the served one
/// (captured state equality), so every reported number also certifies the
/// recovery path. Returns the run (with [`MethodRun::durable`] set)
/// alongside the [`ssa_durable::RecoveryReport`] of the post-run
/// recovery. No snapshot is taken, so the report's `wal_records` counts
/// every journalled operation of the run.
///
/// # Panics
///
/// Panics if the store cannot be opened or recovered, or if the recovered
/// state diverges from the served one — a durability bug, not a
/// measurement artefact.
#[allow(clippy::too_many_arguments)] // mirrors measure_method_sharded plus the directory
pub fn measure_method_durable(
    dir: &std::path::Path,
    method: WdMethod,
    pricing: PricingScheme,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    shards: usize,
    pruned: bool,
) -> (MethodRun, ssa_durable::RecoveryReport) {
    let config = EngineConfig {
        method,
        pricing,
        pruned,
        ..EngineConfig::default()
    };
    let (recovered, durability) =
        ssa_durable::Durability::open(dir, ssa_durable::FsyncPolicy::Off, 0)
            .expect("durable store opens");
    assert!(
        recovered.is_none(),
        "measure_method_durable requires an empty data directory"
    );
    // The market starts *empty* (the paper config fixes slots and
    // keywords independently of `n`) and the whole population registers
    // through the journal, so recovery replays it.
    let mut market = section_v_sharded_market(SectionVConfig::paper(0, seed), config, shards);
    durability
        .log_configure(&market.capture_state().expect("journalable").config)
        .expect("configure journalled");
    market.set_journal(durability.journal());
    let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
    populate_section_v!(market, workload);
    let slots = market.num_slots();
    let keywords = market.num_keywords();
    let (elapsed, report) = timed_round_robin(keywords, auctions, warmup, |requests| {
        market
            .serve_batch(requests)
            .expect("round-robin keywords are in range")
            .total
    });
    drop(durability);
    let (recovered, recovery) = ssa_durable::recover(dir)
        .expect("recovery succeeds")
        .expect("the run journalled state");
    assert_eq!(
        recovered.capture_state().expect("journalable"),
        market.capture_state().expect("journalable"),
        "recovered marketplace diverged from the served one"
    );
    let run = MethodRun {
        method,
        pricing,
        advertisers: n,
        slots,
        shards: Some(shards),
        strategy: None,
        auctions,
        cores: available_cores(),
        pruned,
        durable: true,
        workload: None,
        skew: None,
        targeted: false,
        elapsed,
        report,
        server: None,
        planner_mode: None,
        planner: None,
    };
    (run, recovery)
}

/// Measures one method's batched serving throughput **over the wire**: the
/// same Section V population and round-robin stream as
/// [`measure_method_sharded`], but configured, populated, and served
/// through an `ssa-server` at `server` via [`ssa_net::Client`] — the
/// engine behind `reproduce --server <addr>`.
///
/// The server is rebuilt to the run's configuration (`Configure`), so
/// consecutive runs against one long-lived server are independent. The
/// `f64` aggregates travel as raw bits, so the returned
/// [`MethodRun::report`] is **bit-identical** to the in-process
/// [`measure_method_sharded`] report for the same parameters — only
/// `elapsed` (and the absent per-phase timings) differ.
#[allow(clippy::too_many_arguments)] // mirrors measure_method_sharded plus the address
pub fn measure_method_remote(
    server: SocketAddr,
    method: WdMethod,
    pricing: PricingScheme,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    shards: usize,
    pruned: bool,
) -> Result<MethodRun, NetError> {
    let section_config = SectionVConfig::paper(n, seed);
    let workload = SectionVWorkload::generate(section_config);
    let market_config = market_config_for(&section_config, method, pricing, shards, pruned);

    let mut client = Client::connect(server)?;
    client.configure(&market_config)?;
    populate_remote(&mut client, &workload)?;

    // The same stream shape as `timed_round_robin`: serve the warm-up
    // prefix unmeasured, then time the `auctions`-query batch.
    let keywords = section_config.num_keywords.max(1);
    let stream: Vec<usize> = (0..auctions.max(warmup)).map(|i| i % keywords).collect();
    client.serve_batch(&stream[..warmup])?;
    let start = Instant::now();
    let summary = client.serve_batch(&stream[..auctions])?;
    let elapsed = start.elapsed();

    let report = BatchReport {
        auctions: summary.auctions,
        expected_revenue: summary.expected_revenue,
        filled_slots: summary.filled_slots,
        clicks: summary.clicks,
        purchases: summary.purchases,
        realized_revenue: Money::from_cents(summary.realized_cents),
        // Per-phase solver timings do not travel over the wire; the
        // aggregate outcome fields above are the equivalence surface.
        phases: Default::default(),
    };
    Ok(MethodRun {
        method,
        pricing,
        advertisers: n,
        slots: section_config.num_slots,
        shards: Some(shards),
        strategy: None,
        auctions,
        cores: available_cores(),
        pruned,
        durable: false,
        workload: None,
        skew: None,
        targeted: false,
        elapsed,
        report,
        server: Some(server.to_string()),
        planner_mode: None,
        planner: None,
    })
}

/// Measures the *programmed* Section II-B population: every advertiser a
/// keyword-local Figure 5 ROI program — native Rust, SQL on prepared
/// statements, or the reparse-per-round SQL baseline, per `strategy` —
/// served with `serve_batch` over the same round-robin stream as
/// [`measure_method`]. The native-vs-sql elapsed ratio is the SQL
/// interpreter's overhead; sql-reparse-vs-sql is what the
/// prepared-statement layer buys.
///
/// With `shards = Some(n)` the population serves through a
/// [`ShardedMarketplace`] (the programs are keyword-local, so outcomes are
/// shard-invariant). Pricing is always the paper's GSP — the programmed
/// populations are defined (and equivalence-tested) under GSP settlement,
/// whose click charges are the feedback the ROI programs consume.
#[allow(clippy::too_many_arguments)] // the workload shape plus two toggles
pub fn measure_programmed(
    strategy: Strategy,
    method: WdMethod,
    n: usize,
    auctions: usize,
    warmup: usize,
    seed: u64,
    shards: Option<usize>,
    pruned: bool,
) -> MethodRun {
    let pricing = PricingScheme::Gsp;
    let workload = SectionVWorkload::generate(SectionVConfig::paper(n, seed));
    let slots = workload.config.num_slots;
    let keywords = workload.config.num_keywords;
    let (elapsed, report, planner_mode, planner) = match shards {
        None => {
            let mut built = programmed_market(&workload, method, strategy);
            built.market.set_pruned(pruned);
            let (elapsed, report) = timed_round_robin(keywords, auctions, warmup, |requests| {
                built
                    .market
                    .serve_batch(requests)
                    .expect("round-robin keywords are in range")
                    .total
            });
            let (mode, stats) = planner_totals(&built.handles);
            (elapsed, report, mode, stats)
        }
        Some(shards) => {
            let mut built = programmed_sharded_market(&workload, method, strategy, shards)
                .expect("valid shard count");
            built.market.set_pruned(pruned);
            let (elapsed, report) = timed_round_robin(keywords, auctions, warmup, |requests| {
                built
                    .market
                    .serve_batch(requests)
                    .expect("round-robin keywords are in range")
                    .total
            });
            let (mode, stats) = planner_totals(&built.handles);
            (elapsed, report, mode, stats)
        }
    };
    MethodRun {
        method,
        pricing,
        advertisers: n,
        slots,
        shards,
        strategy: Some(strategy),
        auctions,
        cores: available_cores(),
        pruned,
        durable: false,
        workload: None,
        skew: None,
        targeted: false,
        elapsed,
        report,
        server: None,
        planner_mode,
        planner,
    }
}

/// Sums planner counters over every campaign database of a programmed
/// population (`(None, None)` for native programs, which have none).
fn planner_totals(
    handles: &[ssa_workload::ProgramHandle],
) -> (Option<PlannerMode>, Option<PlannerStats>) {
    let mode = handles.iter().find_map(|h| h.planner_mode());
    let stats = handles
        .iter()
        .filter_map(|h| h.planner_stats())
        .reduce(|a, b| PlannerStats {
            index_hits: a.index_hits + b.index_hits,
            rows_scanned: a.rows_scanned + b.rows_scanned,
            plans_cached: a.plans_cached + b.plans_cached,
        });
    (mode, stats)
}

/// The shared measurement scaffold of [`measure_method`] and
/// [`measure_method_sharded`]: build one round-robin multi-keyword stream,
/// serve the warm-up prefix unmeasured, then time the `auctions`-query
/// batch and return its wall-clock and aggregate report.
fn timed_round_robin(
    keywords: usize,
    auctions: usize,
    warmup: usize,
    mut serve_batch: impl FnMut(&[QueryRequest]) -> BatchReport,
) -> (Duration, BatchReport) {
    let keywords = keywords.max(1);
    let requests: Vec<QueryRequest> = (0..auctions.max(warmup))
        .map(|i| QueryRequest::new(i % keywords))
        .collect();
    serve_batch(&requests[..warmup]);
    let start = Instant::now();
    let report = serve_batch(&requests[..auctions]);
    (start.elapsed(), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_measure_smoke() {
        let pts = measure_series(Method::Rh, &[30, 60], 5, 1, 3);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.ms_per_auction > 0.0));
        assert_eq!(pts[0].n, 30);
    }

    #[test]
    fn method_run_json_shape() {
        let run = measure_method(WdMethod::Reduced, PricingScheme::Gsp, 40, 6, 2, 11, false);
        assert_eq!(run.auctions, 6);
        assert_eq!(run.report.auctions, 6);
        assert!(run.auctions_per_sec() > 0.0);
        assert!(run.cores >= 1);
        let json = run.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"method\":\"rh\"",
            "\"pricing\":\"gsp\"",
            "\"advertisers\":40",
            "\"slots\":15",
            "\"shards\":null",
            "\"strategy\":null",
            "\"auctions\":6",
            "\"elapsed_ms\":",
            "\"auctions_per_sec\":",
            "\"cores\":",
            "\"pruned\":false",
            "\"durable\":false",
            "\"workload\":null",
            "\"targeted\":false",
            "\"shard_skew\":null",
            "\"phases\":{\"program_eval_ms\":",
            "\"solve_ms\":",
            "\"solves\":",
            "\"warm_solves\":",
            "\"avg_candidates\":",
            "\"expected_revenue_cents\":",
            "\"clicks\":",
            "\"realized_revenue_cents\":",
            "\"planner\":null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn shaped_run_reports_workload_and_skew() {
        let run = measure_method_workload(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            30,
            40,
            4,
            17,
            4,
            false,
            WorkloadShape::Zipf { s: 1.1 },
        );
        assert_eq!(run.report.auctions, 40);
        assert_eq!(run.workload, Some(WorkloadShape::Zipf { s: 1.1 }));
        let skew = run.skew.as_ref().expect("shaped runs record skew");
        assert_eq!(skew.queries_per_shard.len(), 4);
        assert_eq!(skew.queries_per_shard.iter().sum::<u64>(), 40);
        let json = run.to_json();
        for key in [
            "\"workload\":\"zipf:1.1\"",
            "\"targeted\":false",
            "\"shard_skew\":{\"queries_per_shard\":[",
            "\"p50\":",
            "\"p99\":",
            "\"max_over_mean\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn churn_run_applies_the_plan_and_accounts_every_auction() {
        // Churn pauses, rebids, and revives campaigns mid-stream; every
        // query must still be served exactly once around the events.
        let run = measure_method_workload(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            25,
            64,
            4,
            23,
            2,
            false,
            WorkloadShape::Churn,
        );
        assert_eq!(run.report.auctions, 64);
        assert!(run.to_json().contains("\"workload\":\"churn\""));
    }

    #[test]
    fn uniform_shaped_run_matches_the_plain_sharded_run_outcomes() {
        // The uniform shape draws the same kind of stream as the classic
        // round-robin harness but from the seeded generator; its outcomes
        // must be shard-invariant like everything else.
        let shape = WorkloadShape::Uniform;
        let one = measure_method_workload(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            30,
            48,
            4,
            31,
            1,
            false,
            shape,
        );
        let four = measure_method_workload(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            30,
            48,
            4,
            31,
            4,
            false,
            shape,
        );
        assert_eq!(one.report, four.report, "shape outcomes depend on shards");
    }

    #[test]
    fn targeted_run_prunes_candidates_and_diverges_from_untargeted() {
        // The targeted population serves the same round-robin keyword
        // stream as `measure_method_sharded`, so if the desktop queries
        // actually exclude the mobile-only advertisers the two runs must
        // place (and click) differently — and the reduced solver's
        // candidate count must sit below the advertiser count.
        let n = 40;
        let run = measure_method_targeted(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            n,
            32,
            4,
            19,
            2,
            false,
        );
        assert_eq!(run.report.auctions, 32);
        assert!(run.targeted);
        let p = run.report.phases;
        assert!(p.solves > 0);
        assert!(
            p.avg_candidates() < n as f64,
            "targeting excluded nobody: {p:?}"
        );
        let untargeted = measure_method_sharded(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            n,
            32,
            4,
            19,
            2,
            false,
        );
        assert_ne!(
            run.report, untargeted.report,
            "targeting changed no outcome on a mixed mobile/desktop stream"
        );
        let json = run.to_json();
        assert!(json.contains("\"targeted\":true"), "{json}");
        assert!(json.contains("\"workload\":null"), "{json}");
    }

    #[test]
    fn pruned_run_matches_unpruned_and_reports_fewer_candidates() {
        // Top-k pruning is an execution strategy: identical auction
        // outcomes, smaller candidate sets fed to the solver.
        let full = measure_method(
            WdMethod::Hungarian,
            PricingScheme::Gsp,
            60,
            10,
            2,
            13,
            false,
        );
        let pruned = measure_method(WdMethod::Hungarian, PricingScheme::Gsp, 60, 10, 2, 13, true);
        assert_eq!(full.report, pruned.report);
        assert!(pruned.to_json().contains("\"pruned\":true"));
        let p = pruned.report.phases;
        assert!(
            p.solves == 0 || p.avg_candidates() < 60.0,
            "pruning never engaged: {p:?}"
        );
    }

    #[test]
    fn programmed_runs_are_strategy_invariant() {
        // Native, prepared-SQL, and reparse-SQL populations must produce
        // identical auction outcomes (only their speed differs) — here
        // through the measurement harness itself, sharded and not.
        let run = |strategy, shards| {
            measure_programmed(strategy, WdMethod::Reduced, 30, 12, 3, 7, shards, false)
        };
        let native = run(Strategy::Native, None);
        let sql = run(Strategy::Sql, None);
        let reparse = run(Strategy::SqlReparse, None);
        assert_eq!(native.report, sql.report);
        assert_eq!(sql.report, reparse.report);
        assert!(sql.to_json().contains("\"strategy\":\"sql\""));
        assert!(native.to_json().contains("\"strategy\":\"native\""));
        let sharded = run(Strategy::Sql, Some(2));
        assert_eq!(sharded.report, sql.report);
        assert!(sharded.to_json().contains("\"shards\":2"));
        // SQL runs expose the planner counters (and took the index path);
        // native runs have no database and report null.
        let stats = sql.planner.expect("sql run has planner counters");
        assert!(stats.index_hits > 0, "{stats:?}");
        assert!(stats.plans_cached > 0, "{stats:?}");
        let json = sql.to_json();
        assert!(
            json.contains("\"planner\":{\"mode\":\"auto\",\"index_hits\":"),
            "{json}"
        );
        assert!(native.planner.is_none());
        assert!(native.to_json().contains("\"planner\":null"));
    }

    #[test]
    fn pruned_warm_programmed_runs_match_unpruned_cold() {
        // The acceptance bar for the solver fast path: pruned + warm-started
        // serving of the programmed three-way workload (native / sql /
        // sql-reparse) is bit-identical to the unpruned cold solve,
        // unsharded and at 1 and 4 shards.
        let workload = SectionVWorkload::generate(SectionVConfig::paper(40, 4242));
        let keywords = workload.config.num_keywords.max(1);
        let requests: Vec<QueryRequest> =
            (0..24).map(|i| QueryRequest::new(i % keywords)).collect();
        for strategy in [Strategy::Native, Strategy::Sql, Strategy::SqlReparse] {
            let mut cold = programmed_market(&workload, WdMethod::Reduced, strategy);
            cold.market.set_pruned(false);
            cold.market.set_warm_start(false);
            let want = cold.market.serve_batch(&requests).expect("in range");

            let mut fast = programmed_market(&workload, WdMethod::Reduced, strategy);
            fast.market.set_pruned(true);
            fast.market.set_warm_start(true);
            let got = fast.market.serve_batch(&requests).expect("in range");
            assert_eq!(got, want, "{strategy} unsharded");

            for shards in [1, 4] {
                let mut sharded =
                    programmed_sharded_market(&workload, WdMethod::Reduced, strategy, shards)
                        .expect("valid shard count");
                sharded.market.set_pruned(true);
                sharded.market.set_warm_start(true);
                let got = sharded.market.serve_batch(&requests).expect("in range");
                assert_eq!(got, want, "{strategy} shards={shards}");
            }
        }
    }

    #[test]
    fn durable_run_recovers_and_matches_the_plain_sharded_run() {
        let dir = std::env::temp_dir().join(format!("ssa-bench-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (run, recovery) = measure_method_durable(
            &dir,
            WdMethod::Reduced,
            PricingScheme::Gsp,
            30,
            8,
            2,
            17,
            2,
            false,
        );
        assert!(run.durable);
        assert!(
            run.to_json().contains("\"durable\":true"),
            "{}",
            run.to_json()
        );
        // 1 configure + 30 registers + 300 campaigns + 2 batches.
        assert!(recovery.wal_records > 0, "{recovery:?}");
        let json = recovery.to_json();
        assert!(json.contains("\"metric\":\"recovery\""), "{json}");
        assert!(json.contains("\"wal_records\":"), "{json}");
        assert!(json.contains("\"replay_ms\":"), "{json}");
        // Journalling is observation, not behaviour: the durable run's
        // outcomes are bit-identical to the plain sharded run's.
        let plain = measure_method_sharded(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            30,
            8,
            2,
            17,
            2,
            false,
        );
        assert_eq!(run.report, plain.report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_method_run_is_shard_count_invariant() {
        let one = measure_method_sharded(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            40,
            12,
            3,
            11,
            1,
            false,
        );
        let four = measure_method_sharded(
            WdMethod::Reduced,
            PricingScheme::Gsp,
            40,
            12,
            3,
            11,
            4,
            false,
        );
        assert_eq!(one.shards, Some(1));
        assert_eq!(four.shards, Some(4));
        assert!(one.to_json().contains("\"shards\":1"), "{}", one.to_json());
        assert!(
            four.to_json().contains("\"shards\":4"),
            "{}",
            four.to_json()
        );
        // Identical auction outcomes regardless of shard count: the sharded
        // layer is an execution strategy, not a semantic one.
        assert_eq!(one.report, four.report);
    }

    #[test]
    fn table_format() {
        let pts = vec![vec![SeriesPoint {
            n: 100,
            ms_per_auction: 1.5,
        }]];
        let t = format_table("Fig X", &[Method::Rh], &pts);
        assert!(t.contains("Fig X"));
        assert!(t.contains("RH"));
        assert!(t.contains("100"));
        assert!(t.contains("1.5000"));
    }
}
