//! Manual perf probes — `#[ignore]`d paired timings for planner work.
//!
//! Run with:
//!
//! ```text
//! cargo test --release -p ssa_bench --test perf_probe -- --ignored --nocapture
//! ```
//!
//! The probe drives twin programmed marketplaces (identical workload,
//! identical RNG seeds) with the planner pipeline on one side and the
//! forced-scan reference interpreter on the other, interleaving rounds so
//! machine drift hits both sides equally. On a noisy box the per-side
//! *minimum* round time is the robust estimator.

use ssa_core::marketplace::QueryRequest;
use ssa_core::WdMethod;
use ssa_minidb::PlannerMode;
use ssa_workload::sql::{programmed_market, ProgrammedMarket, Strategy};
use ssa_workload::{SectionVConfig, SectionVWorkload};
use std::time::{Duration, Instant};

/// Paired planned-vs-scan timing at the reproduce `--quick` scale: 250
/// advertisers × 10 keywords of keyword-local Figure 5 ROI programs, so
/// every program is cold in cache by the time the round-robin stream
/// comes back to it.
#[test]
#[ignore = "manual perf probe, run with --ignored --nocapture"]
fn paired_planner_mode_rounds() {
    const ROUNDS: usize = 40;
    let workload = SectionVWorkload::generate(SectionVConfig::paper(250, 4242));
    let keywords = workload.config.num_keywords.max(1);
    let requests: Vec<QueryRequest> = (0..50).map(|i| QueryRequest::new(i % keywords)).collect();

    let build = |mode: PlannerMode| -> ProgrammedMarket {
        let mut built = programmed_market(&workload, WdMethod::Reduced, Strategy::Sql);
        for handle in &built.handles {
            handle.set_planner_mode(mode);
        }
        // Warm-up round so both sides measure steady serving state.
        built
            .market
            .serve_batch(&requests)
            .expect("keywords in range");
        built
    };
    let mut sides = [
        ("planned", build(PlannerMode::Auto)),
        ("forced_scan", build(PlannerMode::ForceScan)),
    ];

    let mut best = [Duration::MAX; 2];
    let mut total = [Duration::ZERO; 2];
    let mut diffs_ms: Vec<f64> = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate which side runs first so load drift within a round
        // biases neither side systematically.
        let order: [usize; 2] = if round % 2 == 0 { [0, 1] } else { [1, 0] };
        let mut round_ms = [0.0f64; 2];
        for i in order {
            let (label, built) = &mut sides[i];
            let start = Instant::now();
            built
                .market
                .serve_batch(&requests)
                .expect("keywords in range");
            let elapsed = start.elapsed();
            best[i] = best[i].min(elapsed);
            total[i] += elapsed;
            round_ms[i] = elapsed.as_secs_f64() * 1e3;
            println!("round {round:2} {label:12} {:8.3} ms", round_ms[i]);
        }
        diffs_ms.push(round_ms[0] - round_ms[1]);
    }
    for (i, (label, _)) in sides.iter().enumerate() {
        println!(
            "{label:12} min {:8.3} ms  mean {:8.3} ms",
            best[i].as_secs_f64() * 1e3,
            total[i].as_secs_f64() * 1e3 / ROUNDS as f64,
        );
    }
    diffs_ms.sort_by(f64::total_cmp);
    println!(
        "planned - forced_scan per round: median {:+.3} ms  (p25 {:+.3}, p75 {:+.3})",
        diffs_ms[ROUNDS / 2],
        diffs_ms[ROUNDS / 4],
        diffs_ms[3 * ROUNDS / 4],
    );
}
