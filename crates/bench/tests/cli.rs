//! CLI contract tests for the `reproduce` binary: the typed-error paths
//! (`--method rhp` without threads, `--shards 0`, `--load 0`, …) and the
//! sharded load-generator happy path.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Asserts a clean usage failure: exit code 2, no stdout, a stderr that
/// names the problem and reprints the usage text.
fn assert_usage_error(args: &[&str], needle: &str) {
    let out = reproduce(args);
    assert_eq!(out.status.code(), Some(2), "args {args:?}");
    let err = stderr_of(&out);
    assert!(
        err.contains(needle),
        "args {args:?}: stderr {err:?} missing {needle:?}"
    );
    assert!(err.contains("Usage:"), "args {args:?}: no usage in {err:?}");
}

#[test]
fn bare_rhp_is_a_clear_error_not_a_silent_default() {
    assert_usage_error(&["--method", "rhp"], "needs an explicit thread count");
}

#[test]
fn rhp_zero_threads_is_a_clear_error() {
    assert_usage_error(&["--method", "rhp:0"], "thread count must be positive");
    assert_usage_error(&["--method", "rhp:many"], "invalid thread count");
}

#[test]
fn zero_shards_is_a_clear_error_not_a_panic() {
    assert_usage_error(
        &["--method", "rh", "--shards", "0"],
        "shard count must be positive",
    );
    assert_usage_error(
        &["--method", "rh", "--shards", "four"],
        "invalid shard count",
    );
    assert_usage_error(&["--method", "rh", "--shards"], "--shards requires a value");
}

#[test]
fn zero_load_is_a_clear_error() {
    assert_usage_error(
        &["--method", "rh", "--load", "0"],
        "load (query count) must be positive",
    );
    assert_usage_error(&["--method", "rh", "--load", "lots"], "invalid load");
}

#[test]
fn shards_and_load_require_method() {
    assert_usage_error(
        &["--shards", "2"],
        "--shards/--load/--pruned require --method",
    );
    assert_usage_error(
        &["--load", "10"],
        "--shards/--load/--pruned require --method",
    );
    assert_usage_error(&["--pruned"], "--shards/--load/--pruned require --method");
}

#[test]
fn bogus_strategy_is_a_clear_error() {
    assert_usage_error(&["--strategy", "postgres"], "invalid strategy \"postgres\"");
    assert_usage_error(&["--strategy"], "--strategy requires a value");
    assert_usage_error(
        &["--strategy", "sql", "fig12"],
        "cannot be combined with target",
    );
}

#[test]
fn strategy_runs_standalone_with_the_default_method() {
    // The CI perf-smoke invocation: no --method, strategy implies
    // single-run mode at the rh default.
    let out = reproduce(&["--strategy", "sql", "--json", "--quick", "--load", "8"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let json = stdout_of(&out);
    for key in [
        "\"method\":\"rh\"",
        "\"strategy\":\"sql\"",
        "\"shards\":null",
        "\"auctions\":8",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn native_and_sql_strategies_report_identical_outcomes() {
    // The equivalence claim, visible at the CLI surface: same clicks and
    // revenue, population for population (only elapsed_ms may differ).
    let run = |strategy: &str| {
        let out = reproduce(&["--strategy", strategy, "--json", "--quick", "--load", "12"]);
        assert!(out.status.success(), "stderr: {}", stderr_of(&out));
        let json = stdout_of(&out);
        let outcomes = json
            .split("\"expected_revenue_cents\":")
            .nth(1)
            .expect("report keys present")
            // The planner counters legitimately differ between populations
            // (native programs have no database) — outcomes must not.
            .split("\"planner\":")
            .next()
            .expect("planner key present")
            .to_string();
        outcomes
    };
    assert_eq!(run("native"), run("sql"));
}

#[test]
fn bad_server_address_is_a_clear_error_not_a_panic() {
    assert_usage_error(
        &["--method", "rh", "--server", "not an address"],
        "invalid server address",
    );
    assert_usage_error(&["--method", "rh", "--server"], "--server requires a value");
    assert_usage_error(
        &["--server", "127.0.0.1:7878"],
        "--server requires --method",
    );
    assert_usage_error(
        &[
            "--method",
            "rh",
            "--server",
            "127.0.0.1:7878",
            "--strategy",
            "sql",
        ],
        "--server cannot be combined with --strategy",
    );
}

#[test]
fn unreachable_server_is_a_typed_runtime_error() {
    // Grab a port the OS just handed out, then close it: connecting is
    // refused, and the failure is a typed error with exit code 1 — a
    // runtime failure, not a usage error, and never a panic.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe port");
        listener.local_addr().expect("local addr").to_string()
    };
    let out = reproduce(&["--method", "rh", "--quick", "--server", &addr]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    assert!(
        err.contains("remote run against") && err.contains(&addr),
        "stderr {err:?} does not name the failed server"
    );
}

#[test]
fn server_runs_report_the_in_process_outcomes() {
    // Boot a real ssa_net server in this process and drive the reproduce
    // binary against it: the CLI-visible outcome fields must match the
    // in-process sharded run exactly (only timings may differ).
    let market = ssa_core::Marketplace::builder()
        .slots(1)
        .keywords(1)
        .default_click_probs(vec![0.1])
        .build_sharded(1)
        .expect("bootstrap marketplace");
    let server = ssa_net::Server::bind("127.0.0.1:0", market, ssa_net::ServerConfig::default())
        .expect("bind")
        .spawn();
    let addr = server.addr().to_string();

    let outcomes = |args: &[&str]| {
        let out = reproduce(args);
        assert!(out.status.success(), "stderr: {}", stderr_of(&out));
        let json = stdout_of(&out);
        json.split("\"expected_revenue_cents\":")
            .nth(1)
            .unwrap_or_else(|| panic!("no outcome keys in {json}"))
            .split("\"planner\":")
            .next()
            .expect("planner key present")
            .to_string()
    };

    let common = [
        "--method", "rh", "--json", "--quick", "--shards", "2", "--load", "10",
    ];
    let mut remote_args: Vec<&str> = common.to_vec();
    remote_args.extend_from_slice(&["--server", &addr]);

    let out = reproduce(&remote_args);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let remote_json = stdout_of(&out);
    for key in [
        &format!("\"server\":\"{addr}\"") as &str,
        "\"shards\":2",
        "\"auctions\":10",
    ] {
        assert!(remote_json.contains(key), "missing {key} in {remote_json}");
    }

    assert_eq!(outcomes(&remote_args), outcomes(&common));

    let mut client = ssa_net::Client::connect(server.addr()).expect("connect");
    client.shutdown_server().expect("graceful shutdown");
    server.join();
}

#[test]
fn workload_runs_standalone_and_reports_the_skew() {
    // The CI perf-smoke invocation: --workload implies single-run mode at
    // the rh default, and the JSON row carries the shape plus the
    // per-shard skew summary.
    let out = reproduce(&[
        "--workload",
        "zipf:1.1",
        "--shards",
        "4",
        "--json",
        "--quick",
        "--load",
        "40",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let json = stdout_of(&out);
    for key in [
        "\"method\":\"rh\"",
        "\"workload\":\"zipf:1.1\"",
        "\"shards\":4",
        "\"auctions\":40",
        "\"shard_skew\":{\"queries_per_shard\":[",
        "\"p50\":",
        "\"p99\":",
        "\"max_over_mean\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn targeted_runs_standalone_and_reports_it() {
    let out = reproduce(&[
        "--targeted",
        "--shards",
        "2",
        "--json",
        "--quick",
        "--load",
        "20",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let json = stdout_of(&out);
    for key in [
        "\"method\":\"rh\"",
        "\"targeted\":true",
        "\"workload\":null",
        "\"shards\":2",
        "\"auctions\":20",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn bogus_workload_is_a_clear_error() {
    assert_usage_error(&["--workload", "pareto"], "invalid workload \"pareto\"");
    assert_usage_error(&["--workload", "zipf:0"], "invalid workload");
    assert_usage_error(&["--workload"], "--workload requires a value");
    assert_usage_error(
        &["--workload", "flash", "--targeted"],
        "--workload cannot be combined with --targeted",
    );
    assert_usage_error(
        &["--workload", "flash", "--durable"],
        "--durable requires --method",
    );
    assert_usage_error(
        &["--workload", "flash", "--method", "rh", "--durable"],
        "--workload/--targeted cannot be combined",
    );
    assert_usage_error(
        &["--targeted", "--strategy", "sql"],
        "--workload/--targeted cannot be combined",
    );
    assert_usage_error(
        &["--workload", "flash", "fig12"],
        "cannot be combined with target",
    );
}

#[test]
fn sharded_load_generator_emits_json() {
    let out = reproduce(&[
        "--method", "rh", "--json", "--quick", "--shards", "2", "--load", "10",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let json = stdout_of(&out);
    for key in ["\"method\":\"rh\"", "\"shards\":2", "\"auctions\":10"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn unsharded_json_reports_null_shards() {
    let out = reproduce(&["--method", "rh", "--json", "--quick", "--load", "5"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    assert!(stdout_of(&out).contains("\"shards\":null"));
}
