//! `measure_method_remote` against a live in-process server: the wire run
//! reproduces the in-process sharded run bit for bit — same auctions,
//! clicks, purchases, realised revenue, and raw `expected_revenue` bits —
//! and records the server address in the run and its JSON.

use ssa_bench::{measure_method_remote, measure_method_sharded};
use ssa_core::{Marketplace, PricingScheme, WdMethod};
use ssa_net::{Client, Server, ServerConfig};

#[test]
fn remote_run_is_bit_identical_to_the_in_process_run() {
    let bootstrap = Marketplace::builder()
        .slots(1)
        .keywords(1)
        .default_click_probs(vec![0.1])
        .build_sharded(1)
        .expect("bootstrap marketplace");
    let server = Server::bind("127.0.0.1:0", bootstrap, ServerConfig::default())
        .expect("bind")
        .spawn();

    let (n, auctions, warmup, seed, shards) = (40, 30, 4, 11, 2);
    let remote = measure_method_remote(
        server.addr(),
        WdMethod::Reduced,
        PricingScheme::Gsp,
        n,
        auctions,
        warmup,
        seed,
        shards,
        false,
    )
    .expect("remote run succeeds");
    let local = measure_method_sharded(
        WdMethod::Reduced,
        PricingScheme::Gsp,
        n,
        auctions,
        warmup,
        seed,
        shards,
        false,
    );

    assert_eq!(
        remote.report.expected_revenue.to_bits(),
        local.report.expected_revenue.to_bits(),
        "expected_revenue bits diverged between wire and in-process serving"
    );
    // BatchReport's PartialEq covers the outcome fields (auctions, revenue,
    // clicks, purchases, filled slots) and ignores phase timings.
    assert_eq!(remote.report, local.report);
    assert_eq!(remote.advertisers, local.advertisers);
    assert_eq!(remote.slots, local.slots);
    assert_eq!(remote.shards, Some(shards));

    assert_eq!(remote.server.as_deref(), Some(&*server.addr().to_string()));
    assert!(
        remote
            .to_json()
            .contains(&format!("\"server\":\"{}\"", server.addr())),
        "remote JSON must carry the server address"
    );
    assert!(local.to_json().contains("\"server\":null"));

    let mut client = Client::connect(server.addr()).expect("connect");
    client.shutdown_server().expect("graceful shutdown");
    server.join();
}
