//! Batched-pipeline throughput: `AuctionEngine::run_batch` (persistent
//! boxed solver + in-place revenue-matrix refill) versus a loop of
//! `run_auction` calls (fresh matrix and solver scratch per auction), at
//! the paper's Section V sizes (k = 15 slots).
//!
//! The batched rows must come out strictly faster than the matching loop
//! rows — that gap is the per-auction allocation the `WdSolver` pipeline
//! amortises away.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssa_bench::section_v_engine;
use ssa_core::{EngineConfig, PricingScheme, WdMethod};
use std::time::{Duration, Instant};

/// Auctions per measured iteration; one batch call vs one loop of calls.
/// Large enough that each sample runs for tens of milliseconds, keeping
/// scheduler noise well below the batching gap.
const BATCH: usize = 256;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_batched_vs_loop");
    group.sample_size(10);
    let queries: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();
    // Method RH — the paper's scalable recommendation and the engine
    // default — where winner determination is cheap enough that per-auction
    // setup is a measurable share of the hot path. Advertiser counts from
    // the upper half of the Figure 12 sweep: large enough that the
    // per-auction matrix/scratch allocation gap clears machine noise.
    let method = WdMethod::Reduced;
    for n in [2000usize, 5000] {
        let config = EngineConfig {
            method,
            pricing: PricingScheme::Gsp,
        };
        group.bench_with_input(
            BenchmarkId::new(format!("{method}/loop_run_auction"), n),
            &n,
            |b, &n| {
                let mut engine = section_v_engine(n, 0xBA7C4, config);
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| {
                    for &kw in &queries {
                        engine.run_auction(kw, &mut rng);
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{method}/run_batch"), n),
            &n,
            |b, &n| {
                let mut engine = section_v_engine(n, 0xBA7C4, config);
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| engine.run_batch(&queries, &mut rng))
            },
        );
    }
    group.finish();
}

/// Paired measurement: alternate loop/batch rounds on twin engines so slow
/// machine drift hits both sides equally, then print the speedup. This is
/// the robust form of the claim the criterion rows above make.
fn paired_speedup() {
    const ROUNDS: usize = 20;
    let config = EngineConfig {
        method: WdMethod::Reduced,
        pricing: PricingScheme::Gsp,
    };
    let queries: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();
    for n in [2000usize, 5000] {
        let mut loop_engine = section_v_engine(n, 0xBA7C4, config);
        let mut batch_engine = section_v_engine(n, 0xBA7C4, config);
        let mut loop_rng = StdRng::seed_from_u64(1);
        let mut batch_rng = StdRng::seed_from_u64(1);
        // Warm-up round for both sides.
        for &kw in &queries {
            loop_engine.run_auction(kw, &mut loop_rng);
        }
        batch_engine.run_batch(&queries, &mut batch_rng);
        let (mut loop_time, mut batch_time) = (Duration::ZERO, Duration::ZERO);
        for _ in 0..ROUNDS {
            let start = Instant::now();
            for &kw in &queries {
                loop_engine.run_auction(kw, &mut loop_rng);
            }
            loop_time += start.elapsed();
            let start = Instant::now();
            batch_engine.run_batch(&queries, &mut batch_rng);
            batch_time += start.elapsed();
        }
        let auctions = (ROUNDS * BATCH) as f64;
        println!(
            "throughput_batched_vs_loop/rh/paired/{n}: loop {:.0} auctions/sec, \
             batch {:.0} auctions/sec, speedup ×{:.3}",
            auctions / loop_time.as_secs_f64(),
            auctions / batch_time.as_secs_f64(),
            loop_time.as_secs_f64() / batch_time.as_secs_f64(),
        );
    }
}

criterion_group!(benches, bench_throughput);

fn main() {
    // The paired measurement is the default headline; skip it when the
    // harness is invoked with CLI arguments (filters, --list, …) so
    // tooling that only enumerates or selects benchmarks is not blocked.
    // Cargo itself passes a bare `--bench` to harness = false binaries;
    // that one does not count as a user argument.
    if std::env::args().skip(1).all(|a| a == "--bench") {
        paired_speedup();
    }
    benches();
    Criterion::default().final_summary();
}
