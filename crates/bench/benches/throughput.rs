//! Batched-pipeline throughput: `AuctionEngine::run_batch` (persistent
//! boxed solver + in-place revenue-matrix refill) versus a loop of
//! `run_auction` calls (fresh matrix and solver scratch per auction), at
//! the paper's Section V sizes (k = 15 slots).
//!
//! The batched rows must come out strictly faster than the matching loop
//! rows — that gap is the per-auction allocation the `WdSolver` pipeline
//! amortises away.
//!
//! The `marketplace_serve_batch` group measures the service facade on a
//! multi-keyword stream: ten persistent per-keyword engines, each reusing
//! its revenue matrix and solver scratch across the queries routed to it —
//! no per-query allocation even when consecutive queries hit different
//! keywords.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssa_bench::{section_v_engine, section_v_market, section_v_sharded_market};
use ssa_core::marketplace::QueryRequest;
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::{EngineConfig, PricingScheme, WdMethod};
use ssa_workload::sql::{programmed_market, ProgrammedMarket, Strategy};
use ssa_workload::{SectionVConfig, SectionVWorkload};
use std::time::{Duration, Instant};

/// Auctions per measured iteration; one batch call vs one loop of calls.
/// Large enough that each sample runs for tens of milliseconds, keeping
/// scheduler noise well below the batching gap.
const BATCH: usize = 256;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_batched_vs_loop");
    group.sample_size(10);
    let queries: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();
    // Method RH — the paper's scalable recommendation and the engine
    // default — where winner determination is cheap enough that per-auction
    // setup is a measurable share of the hot path. Advertiser counts from
    // the upper half of the Figure 12 sweep: large enough that the
    // per-auction matrix/scratch allocation gap clears machine noise.
    let method = WdMethod::Reduced;
    for n in [2000usize, 5000] {
        let config = EngineConfig {
            method,
            pricing: PricingScheme::Gsp,
            ..EngineConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new(format!("{method}/loop_run_auction"), n),
            &n,
            |b, &n| {
                let mut engine = section_v_engine(n, 0xBA7C4, config);
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| {
                    for &kw in &queries {
                        engine.run_auction(kw, &mut rng);
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{method}/run_batch"), n),
            &n,
            |b, &n| {
                let mut engine = section_v_engine(n, 0xBA7C4, config);
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| engine.run_batch(&queries, &mut rng))
            },
        );
    }
    group.finish();
}

/// The `Marketplace` facade serving a multi-keyword query stream:
/// `serve_batch` splits the stream into same-keyword chunks and feeds each
/// chunk to that keyword's persistent engine, so queries of the same
/// keyword reuse one revenue matrix and one solver scratch — no per-query
/// allocation. The stream below interleaves all 10 Section V keywords in a
/// fixed pseudo-random order (chunk length ≈ 1, the facade's worst case).
fn bench_marketplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("marketplace_serve_batch");
    group.sample_size(10);
    // Deterministic multi-keyword stream over the 10 Section V keywords.
    let mut state = 0x5EEDu64;
    let requests: Vec<QueryRequest> = (0..BATCH)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            QueryRequest::new(((state >> 33) % 10) as usize)
        })
        .collect();
    let config = EngineConfig {
        method: WdMethod::Reduced,
        pricing: PricingScheme::Gsp,
        ..EngineConfig::default()
    };
    for n in [2000usize, 5000] {
        group.bench_with_input(
            BenchmarkId::new("rh/serve_batch_multi_keyword", n),
            &n,
            |b, &n| {
                let mut market = section_v_market(n, 0xBA7C4, config);
                // Warm every per-keyword engine so the measurement sees the
                // steady serving state, not ten one-off engine builds.
                let warmup: Vec<QueryRequest> = (0..10).map(QueryRequest::new).collect();
                market.serve_batch(&warmup).expect("keywords in range");
                b.iter(|| market.serve_batch(&requests).expect("keywords in range"))
            },
        );
    }
    group.finish();
}

/// The programmed Section II-B population the `sql_program_serve_batch`
/// rows run on: every advertiser a keyword-local Figure 5 ROI program of
/// the given flavour. Small keyword universe, mixed stream.
fn programmed_setup(n: usize, strategy: Strategy) -> (ProgrammedMarket, Vec<QueryRequest>) {
    let workload = SectionVWorkload::generate(SectionVConfig {
        num_advertisers: n,
        num_slots: 5,
        num_keywords: 4,
        seed: 0xBA7C4,
    });
    let mut built = programmed_market(&workload, WdMethod::Reduced, strategy);
    let mut state = 0x5EEDu64;
    let requests: Vec<QueryRequest> = (0..BATCH)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            QueryRequest::new(((state >> 33) % 4) as usize)
        })
        .collect();
    let warmup: Vec<QueryRequest> = (0..4).map(QueryRequest::new).collect();
    built
        .market
        .serve_batch(&warmup)
        .expect("keywords in range");
    (built, requests)
}

/// The Section II-B expressiveness claim, measured: the same ROI strategy
/// as native Rust, as a SQL bidding program on prepared statements, and
/// as the reparse-per-round SQL baseline. native-vs-sql is the price of
/// SQL-programmability; sql-vs-sql_reparse is what the prepared-statement
/// layer buys back.
fn bench_sql_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_program_serve_batch");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::new(format!("rh/{strategy}"), 100),
            &strategy,
            |b, &strategy| {
                let (mut built, requests) = programmed_setup(100, strategy);
                b.iter(|| {
                    built
                        .market
                        .serve_batch(&requests)
                        .expect("keywords in range")
                })
            },
        );
    }
    group.finish();
}

/// Paired prepared-vs-reparse measurement: alternate rounds on twin
/// populations so machine drift hits both equally, then print the
/// speedup. Prepared statements must beat the reparse-per-round baseline
/// — that gap is the per-auction parse cost the tentpole removed.
fn paired_sql_program_speedup() {
    const ROUNDS: usize = 10;
    let n = 100;
    let mut flavours: Vec<(Strategy, ProgrammedMarket, Vec<QueryRequest>)> = Strategy::ALL
        .into_iter()
        .map(|strategy| {
            let (built, requests) = programmed_setup(n, strategy);
            (strategy, built, requests)
        })
        .collect();
    let mut times = vec![Duration::ZERO; flavours.len()];
    for _ in 0..ROUNDS {
        for (i, (_, built, requests)) in flavours.iter_mut().enumerate() {
            let start = Instant::now();
            built
                .market
                .serve_batch(requests)
                .expect("keywords in range");
            times[i] += start.elapsed();
        }
    }
    let auctions = (ROUNDS * BATCH) as f64;
    let time_of = |wanted: Strategy| {
        let i = flavours
            .iter()
            .position(|(s, ..)| *s == wanted)
            .expect("flavour measured above");
        times[i].as_secs_f64()
    };
    let sql = time_of(Strategy::Sql);
    for (i, (strategy, ..)) in flavours.iter().enumerate() {
        let t = times[i].as_secs_f64();
        println!(
            "sql_program_serve_batch/rh/paired/{n}: {strategy} {:.0} auctions/sec, \
             ×{:.3} vs prepared sql",
            auctions / t,
            t / sql,
        );
    }
    println!(
        "sql_program_serve_batch/rh/paired/{n}: prepared statements are ×{:.3} \
         the reparse-per-round baseline's throughput",
        time_of(Strategy::SqlReparse) / sql,
    );
}

/// The minidb query pipeline itself, isolated from the marketplace: a
/// prepared equality-probe `SELECT` against one table at 10²–10⁴ rows,
/// once on the planned pipeline (hash-index probe) and once on the
/// forced-scan reference interpreter. The indexed rows should be flat in
/// the table size while the scan rows grow linearly — that widening gap
/// is what the planner tentpole buys SQL bidding programs.
fn bench_minidb_query(c: &mut Criterion) {
    use ssa_minidb::{Database, Params, PlannerMode};
    let mut group = c.benchmark_group("minidb_query");
    group.sample_size(10);
    for rows in [100usize, 1_000, 10_000] {
        for (label, mode) in [
            ("indexed", PlannerMode::Auto),
            ("forced_scan", PlannerMode::ForceScan),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("eq_probe/{label}"), rows),
                &rows,
                |b, &rows| {
                    let mut db = Database::new();
                    db.set_planner_mode(mode);
                    db.run("CREATE TABLE Keywords (text TEXT, bid INT)")
                        .expect("static DDL");
                    let mut insert = db
                        .prepare("INSERT INTO Keywords VALUES (?, ?)")
                        .expect("static statement");
                    for i in 0..rows {
                        insert
                            .execute(
                                &mut db,
                                &Params::new().push(format!("kw{i}")).push(i as i64),
                            )
                            .expect("typed row");
                    }
                    let mut select = db
                        .prepare("SELECT bid FROM Keywords WHERE text = ?")
                        .expect("static statement");
                    // 64 probes spread across the key space per iteration.
                    let keys: Vec<String> =
                        (0..64).map(|i| format!("kw{}", (i * 997) % rows)).collect();
                    b.iter(|| {
                        for key in &keys {
                            let hits = select
                                .query(&mut db, &Params::new().push(key.as_str()))
                                .expect("probe is valid");
                            std::hint::black_box(hits);
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

/// One SQL bidding program serving auctions back to back, isolated from
/// the marketplace: the Figure 5 ROI program's full per-auction statement
/// stream (shared-variable writes, DELETE, the INSERT that fires the
/// `bid` trigger, the bids read-back, then the `settle` trigger) on the
/// planned pipeline versus the forced-scan reference interpreter. The
/// campaign tables hold ~1 row each, so index probes cannot win on row
/// count — this measures the planned path's *fixed* per-statement cost,
/// which must stay at or below the interpreter's for `--strategy sql`
/// runs to benefit from the planner on realistic per-campaign state.
fn bench_sqlprog_round(c: &mut Criterion) {
    use ssa_bidlang::{Money, SlotId};
    use ssa_core::{Bidder, BidderOutcome, QueryContext, SqlProgramBidder};
    use ssa_minidb::PlannerMode;
    use ssa_workload::sql::{roi_params, ROI_PROGRAM, ROI_TABLES};

    let mut group = c.benchmark_group("sqlprog_round");
    group.sample_size(20);
    for (label, mode) in [
        ("planned", PlannerMode::Auto),
        ("forced_scan", PlannerMode::ForceScan),
    ] {
        group.bench_function(BenchmarkId::new("roi_fig5", label), |b| {
            let mut program =
                SqlProgramBidder::new(ROI_TABLES, ROI_PROGRAM, &roi_params(25, 5, 1.5, 0.5))
                    .expect("Figure 5 program loads");
            program.db_mut().set_planner_mode(mode);
            let won = BidderOutcome {
                slot: Some(SlotId::new(1)),
                clicked: true,
                purchased: false,
                price: Money::from_cents(7),
            };
            let lost = BidderOutcome::lost();
            let mut time = 0u64;
            b.iter(|| {
                for _ in 0..64 {
                    time += 1;
                    let ctx = QueryContext {
                        time,
                        keyword: 0,
                        num_keywords: 1,
                    };
                    let bids = program.on_query(&ctx);
                    std::hint::black_box(&bids);
                    program.on_outcome(&ctx, if time.is_multiple_of(3) { &won } else { &lost });
                }
            });
            assert!(
                program.last_error().is_none(),
                "program hit an error: {:?}",
                program.last_error()
            );
        });
    }
    group.finish();
}

/// Shard counts measured by the `sharded_serve_batch` group.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The mixed 8-keyword Section V workload the sharded scaling rows run on.
fn sharded_setup(n: usize, shards: usize) -> (ShardedMarketplace, Vec<QueryRequest>) {
    let config = EngineConfig {
        method: WdMethod::Reduced,
        pricing: PricingScheme::Gsp,
        ..EngineConfig::default()
    };
    let section = SectionVConfig {
        num_advertisers: n,
        num_slots: 15,
        num_keywords: 8,
        seed: 0xBA7C4,
    };
    let mut market = section_v_sharded_market(section, config, shards);
    // Deterministic interleaved stream over all 8 keywords (chunk length
    // ≈ 1 — the fan-out's worst case for batching, best case for spread).
    let mut state = 0x5EEDu64;
    let requests: Vec<QueryRequest> = (0..BATCH)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            QueryRequest::new(((state >> 33) % 8) as usize)
        })
        .collect();
    let warmup: Vec<QueryRequest> = (0..8).map(QueryRequest::new).collect();
    market.serve_batch(&warmup).expect("keywords in range");
    (market, requests)
}

/// `ShardedMarketplace::serve_batch` on a mixed 8-keyword stream at 1, 2,
/// 4, and 8 shards: per-shard scoped workers each driving their own
/// persistent per-keyword engines. Wall-clock scaling with the shard count
/// is bounded by the machine's cores (`std::thread::available_parallelism`
/// — the paired rows printed by `cargo bench --bench throughput` report
/// the observed speedups); the auction *outcomes* are identical at every
/// shard count.
fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_serve_batch");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("rh/mixed_8_keywords", shards),
            &shards,
            |b, &shards| {
                let (mut market, requests) = sharded_setup(2000, shards);
                b.iter(|| market.serve_batch(&requests).expect("keywords in range"))
            },
        );
    }
    group.finish();
}

/// Paired sharded-scaling measurement: alternate rounds across all shard
/// counts so machine drift hits every configuration equally, then print
/// throughput and the speedup over the 1-shard baseline.
fn paired_sharded_speedup() {
    const ROUNDS: usize = 10;
    let n = 2000;
    let mut markets: Vec<(usize, ShardedMarketplace, Vec<QueryRequest>)> = SHARD_COUNTS
        .into_iter()
        .map(|shards| {
            let (market, requests) = sharded_setup(n, shards);
            (shards, market, requests)
        })
        .collect();
    let mut times = vec![Duration::ZERO; markets.len()];
    for _ in 0..ROUNDS {
        for (i, (_, market, requests)) in markets.iter_mut().enumerate() {
            let start = Instant::now();
            market.serve_batch(requests).expect("keywords in range");
            times[i] += start.elapsed();
        }
    }
    let auctions = (ROUNDS * BATCH) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let baseline = times[0].as_secs_f64();
    for (i, (shards, ..)) in markets.iter().enumerate() {
        println!(
            "sharded_serve_batch/rh/paired/{n}: shards {shards} \
             ({cores} cores): {:.0} auctions/sec, speedup ×{:.3} vs 1 shard",
            auctions / times[i].as_secs_f64(),
            baseline / times[i].as_secs_f64(),
        );
    }
}

/// Winner determination through the top-k `PrunedSolver` wrapper versus
/// the full-matrix solve, on the same engines and query stream. The
/// pruned rows run the inner solver on the union of each slot's top-k
/// bidders (ties at the floor kept — outcomes are bit-identical), so the
/// solve phase shrinks from `n` advertisers to `O(k²)` candidates. Method
/// H is where the gap is widest (the full Hungarian is Θ(n·k²) per
/// auction); RH rows show the wrapper composes with the reduced graph.
fn bench_pruned_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruned_solve");
    group.sample_size(10);
    let queries: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();
    for method in [WdMethod::Hungarian, WdMethod::Reduced] {
        for n in [1000usize, 2000] {
            for (label, pruned) in [("full", false), ("pruned", true)] {
                // Warm starts would skip every solve after warmup (bids
                // never change here) and measure nothing; cold-solve each
                // auction so the rows isolate the solve phase itself.
                let config = EngineConfig {
                    method,
                    pricing: PricingScheme::Gsp,
                    pruned,
                    warm_start: false,
                };
                group.bench_with_input(
                    BenchmarkId::new(format!("{method}/{label}"), n),
                    &n,
                    |b, &n| {
                        let mut engine = section_v_engine(n, 0xBA7C4, config);
                        let mut rng = StdRng::seed_from_u64(1);
                        engine.run_batch(&queries, &mut rng);
                        b.iter(|| engine.run_batch(&queries, &mut rng))
                    },
                );
            }
        }
    }
    group.finish();
}

/// Paired full-vs-pruned measurement on method H: alternate rounds on twin
/// engines so machine drift hits both equally, assert the outcomes agree,
/// and print the speedup plus the per-phase solve times that explain it.
fn paired_pruned_speedup() {
    const ROUNDS: usize = 10;
    let queries: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();
    for n in [1000usize, 2000] {
        let build = |pruned| {
            // Cold-solve each auction (see bench_pruned_solve) so the
            // paired rows measure the solver, not the warm-start skip.
            let config = EngineConfig {
                method: WdMethod::Hungarian,
                pricing: PricingScheme::Gsp,
                pruned,
                warm_start: false,
            };
            section_v_engine(n, 0xBA7C4, config)
        };
        let mut full = build(false);
        let mut pruned = build(true);
        let mut full_rng = StdRng::seed_from_u64(1);
        let mut pruned_rng = StdRng::seed_from_u64(1);
        full.run_batch(&queries, &mut full_rng);
        pruned.run_batch(&queries, &mut pruned_rng);
        let (mut full_time, mut pruned_time) = (Duration::ZERO, Duration::ZERO);
        let mut reports = None;
        for _ in 0..ROUNDS {
            let start = Instant::now();
            let full_report = full.run_batch(&queries, &mut full_rng);
            full_time += start.elapsed();
            let start = Instant::now();
            let pruned_report = pruned.run_batch(&queries, &mut pruned_rng);
            pruned_time += start.elapsed();
            assert_eq!(
                full_report, pruned_report,
                "pruned winner determination diverged at n = {n}"
            );
            reports = Some((full_report, pruned_report));
        }
        let auctions = (ROUNDS * BATCH) as f64;
        let (full_report, pruned_report) = reports.expect("ROUNDS > 0");
        println!(
            "pruned_solve/h/paired/{n}: full {:.0} auctions/sec \
             (solve {:.2} ms), pruned {:.0} auctions/sec (solve {:.2} ms, \
             avg {:.1} of {n} candidates), speedup ×{:.3}",
            auctions / full_time.as_secs_f64(),
            full_report.phases.solve_ns as f64 / 1e6,
            auctions / pruned_time.as_secs_f64(),
            pruned_report.phases.solve_ns as f64 / 1e6,
            pruned_report.phases.avg_candidates(),
            full_time.as_secs_f64() / pruned_time.as_secs_f64(),
        );
    }
}

/// Paired measurement: alternate loop/batch rounds on twin engines so slow
/// machine drift hits both sides equally, then print the speedup. This is
/// the robust form of the claim the criterion rows above make.
fn paired_speedup() {
    const ROUNDS: usize = 20;
    let config = EngineConfig {
        method: WdMethod::Reduced,
        pricing: PricingScheme::Gsp,
        ..EngineConfig::default()
    };
    let queries: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();
    for n in [2000usize, 5000] {
        let mut loop_engine = section_v_engine(n, 0xBA7C4, config);
        let mut batch_engine = section_v_engine(n, 0xBA7C4, config);
        let mut loop_rng = StdRng::seed_from_u64(1);
        let mut batch_rng = StdRng::seed_from_u64(1);
        // Warm-up round for both sides.
        for &kw in &queries {
            loop_engine.run_auction(kw, &mut loop_rng);
        }
        batch_engine.run_batch(&queries, &mut batch_rng);
        let (mut loop_time, mut batch_time) = (Duration::ZERO, Duration::ZERO);
        for _ in 0..ROUNDS {
            let start = Instant::now();
            for &kw in &queries {
                loop_engine.run_auction(kw, &mut loop_rng);
            }
            loop_time += start.elapsed();
            let start = Instant::now();
            batch_engine.run_batch(&queries, &mut batch_rng);
            batch_time += start.elapsed();
        }
        let auctions = (ROUNDS * BATCH) as f64;
        println!(
            "throughput_batched_vs_loop/rh/paired/{n}: loop {:.0} auctions/sec, \
             batch {:.0} auctions/sec, speedup ×{:.3}",
            auctions / loop_time.as_secs_f64(),
            auctions / batch_time.as_secs_f64(),
            loop_time.as_secs_f64() / batch_time.as_secs_f64(),
        );
    }
}

criterion_group!(
    benches,
    bench_throughput,
    bench_marketplace,
    bench_sharded,
    bench_pruned_solve,
    bench_sql_programs,
    bench_minidb_query,
    bench_sqlprog_round
);

fn main() {
    // The paired measurements are the default headline; skip them when the
    // harness is invoked with CLI arguments (filters, --list, …) so
    // tooling that only enumerates or selects benchmarks is not blocked.
    // Cargo itself passes a bare `--bench` to harness = false binaries;
    // that one does not count as a user argument.
    if std::env::args().skip(1).all(|a| a == "--bench") {
        paired_speedup();
        paired_pruned_speedup();
        paired_sharded_speedup();
        paired_sql_program_speedup();
    }
    benches();
    Criterion::default().final_summary();
}
