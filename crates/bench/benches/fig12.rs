//! Criterion bench for Figure 12: winner-determination time per auction
//! under the four methods (LP, H, RH, RHTALU), k = 15 slots.
//!
//! Criterion measures single auctions; the `reproduce` binary prints the
//! full paper-scale sweep. LP is capped at smaller n here to keep
//! `cargo bench` runtimes reasonable — the crossover behaviour is identical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_workload::{Method, SectionVConfig, SectionVWorkload, Simulation};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_winner_determination");
    group.sample_size(10);
    for method in Method::ALL {
        let counts: &[usize] = if method == Method::Lp {
            &[500, 1000]
        } else {
            &[500, 1000, 2000, 4000]
        };
        for &n in counts {
            let workload = SectionVWorkload::generate(SectionVConfig::paper(n, 0xBEC812));
            group.bench_with_input(BenchmarkId::new(method.label(), n), &n, |b, _| {
                let mut sim = Simulation::new(workload.clone(), method);
                sim.run_timed(5);
                b.iter(|| sim.run_auction());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
