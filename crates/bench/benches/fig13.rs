//! Criterion bench for Figure 13: RH vs RHTALU at larger advertiser counts
//! (the Section IV program-evaluation reductions at work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_workload::{Method, SectionVConfig, SectionVWorkload, Simulation};

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_program_evaluation");
    group.sample_size(10);
    for method in [Method::Rh, Method::Rhtalu] {
        for n in [2000usize, 8000, 16000] {
            let workload = SectionVWorkload::generate(SectionVConfig::paper(n, 0xBEC813));
            group.bench_with_input(BenchmarkId::new(method.label(), n), &n, |b, _| {
                let mut sim = Simulation::new(workload.clone(), method);
                sim.run_timed(5);
                b.iter(|| sim.run_auction());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
