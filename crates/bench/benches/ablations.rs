//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! * A1 — the reduced-graph benefit as k varies (the `O(k⁵)` term grows,
//!   the `O(k² n)` term shrinks);
//! * A2 — top-k selection strategies: full sort vs bounded heaps vs the
//!   threshold algorithm over sorted indexes;
//! * A3 — logical updates on/off for the ROI population;
//! * A4 — the 2^k heavyweight solver, sequential vs threaded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssa_bidlang::{BidsTable, Money};
use ssa_core::heavyweight::{solve_heavyweight, HeavyweightInstance, PatternClickModel};
use ssa_core::prob::PurchaseModel;
use ssa_matching::threshold::{threshold_top_k, IndexedSource, MaintainedIndex};
use ssa_matching::{max_weight_assignment, reduced_assignment, top_k_indices, RevenueMatrix};
use ssa_strategy::{LogicalRoiPopulation, NaiveRoiPopulation, RoiPopulation};
use ssa_workload::{SectionVConfig, SectionVWorkload};

fn random_matrix(n: usize, k: usize, seed: u64) -> RevenueMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    RevenueMatrix::from_fn(n, k, |_, _| rng.gen_range(0.0..100.0))
}

/// A1: full Hungarian vs reduced graph across k.
fn ablation_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reduction_vs_k");
    group.sample_size(10);
    let n = 3000;
    for k in [2usize, 5, 10, 15, 20, 25] {
        let matrix = random_matrix(n, k, 42 + k as u64);
        group.bench_with_input(BenchmarkId::new("hungarian_full", k), &k, |b, _| {
            b.iter(|| max_weight_assignment(&matrix))
        });
        group.bench_with_input(BenchmarkId::new("reduced", k), &k, |b, _| {
            b.iter(|| reduced_assignment(&matrix))
        });
    }
    group.finish();
}

/// A2: three ways to find the per-slot top-k.
fn ablation_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_topk_selection");
    group.sample_size(10);
    let (n, k) = (20_000usize, 15usize);
    let matrix = random_matrix(n, k, 7);

    group.bench_function("full_sort_per_slot", |b| {
        b.iter(|| {
            (0..k)
                .map(|j| {
                    let mut col: Vec<(usize, f64)> =
                        (0..n).map(|i| (i, matrix.get(i, j))).collect();
                    col.sort_by(|a, b| b.1.total_cmp(&a.1));
                    col.truncate(k);
                    col
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("bounded_heaps", |b| b.iter(|| top_k_indices(&matrix, k)));

    // TA over pre-sorted indexes (weight × bid, both static here).
    let w_indexes: Vec<MaintainedIndex> = (0..k)
        .map(|j| MaintainedIndex::new((0..n).map(|i| matrix.get(i, j)).collect()))
        .collect();
    let mut rng = StdRng::seed_from_u64(12);
    let bid_index = MaintainedIndex::new((0..n).map(|_| rng.gen_range(0.0..50.0)).collect());
    group.bench_function("threshold_algorithm", |b| {
        b.iter(|| {
            (0..k)
                .map(|j| {
                    let source = IndexedSource::new(vec![&w_indexes[j], &bid_index]);
                    threshold_top_k(&source, &|v: &[f64]| v[0] * v[1], k).0
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// A3: full program evaluation vs logical updates per auction.
fn ablation_logical(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_logical_updates");
    group.sample_size(10);
    for n in [2000usize, 10000] {
        let workload = SectionVWorkload::generate(SectionVConfig::paper(n, 99));
        group.bench_with_input(BenchmarkId::new("naive_eval", n), &n, |b, _| {
            let mut pop = NaiveRoiPopulation::new(&workload.bidders);
            let mut t = 0usize;
            b.iter(|| {
                t += 1;
                pop.begin_auction(t % 10)
            })
        });
        group.bench_with_input(BenchmarkId::new("logical_updates", n), &n, |b, _| {
            let mut pop = LogicalRoiPopulation::new(&workload.bidders);
            let mut t = 0usize;
            b.iter(|| {
                t += 1;
                pop.begin_auction(t % 10)
            })
        });
    }
    group.finish();
}

/// A4: heavyweight 2^k enumeration, sequential vs threaded, across k.
fn ablation_heavyweight(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_heavyweight");
    group.sample_size(10);
    let n = 60;
    for k in [4usize, 8, 10] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let is_heavy: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let heavy_flags = is_heavy.clone();
        let clicks = PatternClickModel::from_fn(n, k, |adv, slot, pattern| {
            let base = 0.8 / (1.0 + slot as f64) / (1.0 + (adv % 7) as f64 * 0.1);
            // Lightweights lose clicks as more heavyweights appear.
            if heavy_flags[adv] {
                base
            } else {
                base * (1.0 - 0.03 * pattern.count() as f64).max(0.1)
            }
        });
        let bids: Vec<BidsTable> = (0..n)
            .map(|_| BidsTable::single_feature(Money::from_cents(rng.gen_range(1..=50))))
            .collect();
        let instance = HeavyweightInstance {
            is_heavy,
            clicks,
            purchases: PurchaseModel::never(n, k),
            bids,
        };
        group.bench_with_input(BenchmarkId::new("sequential", k), &k, |b, _| {
            b.iter(|| solve_heavyweight(&instance, 1))
        });
        group.bench_with_input(BenchmarkId::new("threaded_8", k), &k, |b, _| {
            b.iter(|| solve_heavyweight(&instance, 8))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_k,
    ablation_topk,
    ablation_logical,
    ablation_heavyweight
);
criterion_main!(benches);
