//! Typed query targeting end to end: campaigns restrict which queries
//! they bid on with attribute expressions, non-matching queries exclude
//! them from the matching, hostile targeting sources are rejected with a
//! typed error instead of being stored, and the hostile workload shapes
//! show how skewed traffic routes across shards.
//!
//! ```text
//! cargo run --example targeted_campaign
//! ```

use sponsored_search::bidlang::Money;
use sponsored_search::core::UserAttrs;
use sponsored_search::marketplace::{CampaignSpec, MarketError, Marketplace, QueryRequest};
use sponsored_search::workload::{defective_targeting_sources, ShardSkew, WorkloadShape};

fn main() {
    let mut market = Marketplace::builder()
        .slots(2)
        .keywords(1)
        .seed(2008)
        .default_click_probs(vec![0.7, 0.3])
        .build()
        .expect("valid configuration");

    // Three advertisers on one keyword: an untargeted generalist, a
    // mobile-only bidder, and a premium bidder that wants affluent US
    // traffic. Higher bids lose on queries their targeting excludes.
    let generalist = market.register_advertiser("generalist.example");
    let mobile = market.register_advertiser("mobile-first.example");
    let premium = market.register_advertiser("premium.example");
    market
        .add_campaign(
            generalist,
            0,
            CampaignSpec::per_click(Money::from_cents(10)),
        )
        .expect("campaign accepted");
    market
        .add_campaign(
            mobile,
            0,
            CampaignSpec::per_click(Money::from_cents(18)).targeting("device = 'mobile'"),
        )
        .expect("well-formed targeting");
    market
        .add_campaign(
            premium,
            0,
            CampaignSpec::per_click(Money::from_cents(25)).targeting("geo = 'us' and score >= 7"),
        )
        .expect("well-formed targeting");

    let names = [
        (generalist, "generalist"),
        (mobile, "mobile-first"),
        (premium, "premium"),
    ];
    let name_of = |adv| {
        names
            .iter()
            .find(|(handle, _)| *handle == adv)
            .map(|(_, name)| *name)
            .expect("known advertiser")
    };

    // The same keyword under four different users. A targeted campaign
    // only competes on queries its expression accepts — a missing
    // attribute fails every comparison on its key, so the bare query is
    // served by the generalist alone, highest bid notwithstanding.
    let queries = [
        ("no attributes at all", UserAttrs::new()),
        (
            "mobile user in Germany",
            UserAttrs::new().device("mobile").geo("de"),
        ),
        (
            "desktop user in the US, score 9",
            UserAttrs::new()
                .device("desktop")
                .geo("us")
                .set_int("score", 9),
        ),
        (
            "mobile user in the US, score 9",
            UserAttrs::new()
                .device("mobile")
                .geo("us")
                .set_int("score", 9),
        ),
    ];
    for (label, attrs) in queries {
        let response = market
            .serve(QueryRequest::with_attrs(0, attrs))
            .expect("keyword 0 exists");
        let winners: Vec<&str> = response
            .placements
            .iter()
            .map(|p| name_of(p.advertiser))
            .collect();
        println!("{label:33} -> slots {winners:?}");
    }

    // The control-plane half of a hostile world: a defective targeting
    // source (unbalanced parens, absurd nesting, type-confused
    // comparisons, …) is rejected at registration with a typed error and
    // the market is left exactly as it was.
    let hostile = defective_targeting_sources(1, 7).remove(0);
    match market.add_campaign(
        generalist,
        0,
        CampaignSpec::per_click(Money::from_cents(5)).targeting(hostile),
    ) {
        Err(MarketError::InvalidTargeting(err)) => {
            println!("hostile source rejected with a typed error: {err}");
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // The data-plane half: Zipf-skewed keyword popularity concentrates
    // load on whichever shards own the hot keywords. ShardSkew summarises
    // how unevenly a stream routes — the same summary `reproduce
    // --workload zipf:1.1 --json` reports per run.
    let stream = WorkloadShape::Zipf { s: 1.1 }.query_stream(1_000, 10_000, 42);
    let skew = ShardSkew::from_stream(&stream, 4);
    println!(
        "zipf:1.1 over 4 shards: {:?} queries per shard (p50 {}, p99 {}, max/mean {:.2})",
        skew.queries_per_shard,
        skew.p50(),
        skew.p99(),
        skew.max_over_mean()
    );
}
