//! Sharded marketplace quickstart: the multi-threaded sibling of
//! `examples/marketplace.rs`.
//!
//! An 8-keyword marketplace is partitioned across 4 shards; a mixed query
//! stream is fanned out to per-shard worker threads by `serve_batch`, bids
//! change incrementally between batches (routed to the owning shard, no
//! cross-shard locking), and at the end the run is replayed on an
//! *unsharded* marketplace in keyword-local RNG mode to demonstrate the
//! equivalence guarantee: sharding changes the wall-clock, never the
//! auctions.
//!
//! ```text
//! cargo run --example sharded_marketplace
//! ```

use sponsored_search::bidlang::Money;
use sponsored_search::core::sharded::ShardedMarketplace;
use sponsored_search::core::WdMethod;
use sponsored_search::marketplace::{CampaignSpec, Marketplace, MarketplaceBuilder, QueryRequest};

const KEYWORDS: usize = 8;
const SHARDS: usize = 4;

fn configure() -> MarketplaceBuilder {
    Marketplace::builder()
        .slots(2)
        .keywords(KEYWORDS)
        .method(WdMethod::Reduced)
        .seed(2008)
        .default_click_probs(vec![0.35, 0.2])
}

/// Registers the same small campaign population on any marketplace flavour
/// (the control-plane APIs are name-for-name identical).
macro_rules! populate {
    ($market:expr) => {{
        let athletics = $market.register_advertiser("Athletics Inc");
        let runners = $market.register_advertiser("Runner's Hub");
        let brand = $market.register_advertiser("BrandHouse");
        let mut campaigns = Vec::new();
        for keyword in 0..KEYWORDS {
            campaigns.push(
                $market
                    .add_campaign(
                        athletics,
                        keyword,
                        CampaignSpec::per_click(Money::from_cents(10 + keyword as i64)),
                    )
                    .expect("campaign accepted"),
            );
            campaigns.push(
                $market
                    .add_campaign(
                        runners,
                        keyword,
                        CampaignSpec::per_click(Money::from_cents(14 - keyword as i64)),
                    )
                    .expect("campaign accepted"),
            );
            // Three bidders on two slots, so GSP's runner-up price is
            // always live and realized revenue is non-trivial.
            campaigns.push(
                $market
                    .add_campaign(
                        brand,
                        keyword,
                        CampaignSpec::per_click(Money::from_cents(7)),
                    )
                    .expect("campaign accepted"),
            );
        }
        campaigns
    }};
}

fn mixed_stream(len: usize) -> Vec<QueryRequest> {
    let mut state = 0x5EEDu64;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            QueryRequest::new(((state >> 33) % KEYWORDS as u64) as usize)
        })
        .collect()
}

fn main() {
    let mut market: ShardedMarketplace = configure()
        .build_sharded(SHARDS)
        .expect("valid configuration");
    let campaigns = populate!(market);

    println!("== keyword → shard routing (stable hash) ==");
    for keyword in 0..KEYWORDS {
        println!("  keyword {keyword} → shard {}", market.shard_of(keyword));
    }

    // Serve a mixed-keyword stream: serve_batch chunks it, deals the
    // chunks to their owning shards, and runs the shards concurrently.
    let stream = mixed_stream(200);
    let report = market.serve_batch(&stream).expect("keywords in range");
    println!("\n== first batch (200 queries over {SHARDS} shards) ==");
    println!(
        "  auctions {} · chunks {} · clicks {} · realized {}",
        report.total.auctions, report.chunks, report.total.clicks, report.total.realized_revenue,
    );

    // Incremental updates route straight to the owning shard: O(log n) on
    // that keyword's logical bid index, other shards untouched.
    market
        .update_bid(campaigns[0], Money::from_cents(1))
        .expect("per-click campaign");
    market.pause_campaign(campaigns[3]).expect("known campaign");
    let report2 = market.serve_batch(&stream).expect("keywords in range");
    println!("\n== second batch (after update_bid + pause) ==");
    println!(
        "  auctions {} · clicks {} · realized {}",
        report2.total.auctions, report2.total.clicks, report2.total.realized_revenue,
    );

    // The equivalence guarantee, demonstrated: an unsharded marketplace in
    // keyword-local RNG mode replays the exact same auctions.
    let mut replay = configure()
        .keyword_local_rng(true)
        .build()
        .expect("valid configuration");
    let replay_campaigns = populate!(replay);
    let replay1 = replay.serve_batch(&stream).expect("keywords in range");
    replay
        .update_bid(replay_campaigns[0], Money::from_cents(1))
        .expect("per-click campaign");
    replay
        .pause_campaign(replay_campaigns[3])
        .expect("known campaign");
    let replay2 = replay.serve_batch(&stream).expect("keywords in range");
    assert_eq!(report, replay1, "sharded and unsharded runs must agree");
    assert_eq!(report2, replay2, "…including across incremental updates");
    println!(
        "\nunsharded replay matched both batches bit-for-bit \
         ({} shards are an execution detail, not a semantic one)",
        SHARDS
    );
}
