//! The Section III-F heavyweight/lightweight model: click probabilities and
//! bids that depend on *which slots hold famous advertisers*.
//!
//! A small company ("Cozy Boots") bids extra for placements where no
//! heavyweight sits directly above it; the solver enumerates all 2^k
//! heavyweight patterns and picks the revenue-maximising page layout.
//!
//! ```text
//! cargo run --example heavyweight_pages
//! ```

use sponsored_search::bidlang::{BidsTable, Formula, Money, SlotId};
use sponsored_search::core::heavyweight::{
    solve_heavyweight, HeavyweightInstance, PatternClickModel,
};
use sponsored_search::core::prob::PurchaseModel;

fn main() {
    let names = ["MegaCorp", "Cozy Boots", "ShoeBarn", "GiantMart"];
    let is_heavy = vec![true, false, false, true];
    let n = 4;
    let k = 3;

    // Lightweights lose half their clicks when a heavyweight occupies the
    // slot directly above them (the paper's "diverting away clicks"
    // example).
    let heavy_flags = is_heavy.clone();
    let clicks = PatternClickModel::from_fn(n, k, move |adv, slot, pattern| {
        let base = [0.5, 0.42, 0.36, 0.48][adv] * [1.0, 0.7, 0.5][slot];
        let shadowed = slot > 0 && pattern.is_heavy(SlotId::from_index0(slot - 1));
        if !heavy_flags[adv] && shadowed {
            base * 0.5
        } else {
            base
        }
    });

    let bids = vec![
        BidsTable::single_feature(Money::from_cents(30)),
        // Cozy Boots: 20¢ per click, plus 6¢ for slot 2 *provided* slot 1
        // is not a heavyweight.
        BidsTable::new(vec![
            (Formula::click(), Money::from_cents(20)),
            (
                Formula::slot(SlotId::new(2)) & !Formula::heavy_in_slot(SlotId::new(1)),
                Money::from_cents(6),
            ),
        ]),
        BidsTable::single_feature(Money::from_cents(22)),
        BidsTable::single_feature(Money::from_cents(26)),
    ];

    let instance = HeavyweightInstance {
        is_heavy,
        clicks,
        purchases: PurchaseModel::never(n, k),
        bids,
    };

    let solution = solve_heavyweight(&instance, 4);
    println!("optimal page layout over all 2^{k} heavyweight patterns:\n");
    for (j, adv) in solution.slot_to_adv.iter().enumerate() {
        let slot = SlotId::from_index0(j);
        let tag = if solution.pattern.is_heavy(slot) {
            "HEAVY"
        } else {
            "light"
        };
        match adv {
            Some(a) => println!("  slot {} [{tag}] -> {}", j + 1, names[*a]),
            None => println!("  slot {} [{tag}] -> (empty)", j + 1),
        }
    }
    println!(
        "\nexpected revenue: {:.2}¢ (heavyweight slots: {})",
        solution.expected_revenue,
        solution.pattern.count(),
    );
}
