//! SQL bidding programs as first-class campaigns (Section II-B).
//!
//! An advertiser hands the marketplace a real *SQL bidding program* — a
//! schema, initial state, and triggers — via
//! `CampaignSpec::sql_program`. The embedded `ssa_minidb` engine parses
//! the program once at registration (prepared statements thereafter);
//! each auction the marketplace sets the shared `time`/`keyword`
//! variables, fires the program's `Query` trigger, reads its `Bids`
//! table, and after settlement fires the `Outcome` trigger — so the whole
//! strategy, ROI bookkeeping included, lives inside SQL.
//!
//! The program below is the paper's Figure 5 "Equalize ROI" strategy for
//! a single keyword, bidding against a couple of static rivals.
//!
//! ```text
//! cargo run --example sql_campaign
//! ```

use sponsored_search::bidlang::Money;
use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use sponsored_search::minidb::Params;

/// Schema and initial state. The host protocol requires a single-column
/// `Query` table, a `Bids (formula, value)` table, and — to receive
/// settlement notifications — a single-column `Outcome` table. Numeric
/// initial state is bound through parameters, never string-formatted.
const TABLES: &str = "
CREATE TABLE Query (kw INT);
CREATE TABLE Outcome (clicked INT);
CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, relevance FLOAT);
CREATE TABLE Bids (formula TEXT, value INT);
INSERT INTO Keywords VALUES ('shoes', 'Click', :value, :roi, :bid, 1.0);
INSERT INTO Bids VALUES ('Click', 0);
SET amtSpent = 0.0;
SET spent = 0.0;
SET valueGained = 0.0;
SET clickValue = :value;
SET targetSpendRate = :rate;
";

/// Figure 5, plus a settlement trigger keeping the ROI statistic in SQL.
const PROGRAM: &str = "
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0 AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0 AND bid > 0;
  ENDIF;

  UPDATE Bids SET value =
    ( SELECT SUM( K.bid ) FROM Keywords K
      WHERE K.relevance > 0.7 AND K.formula = Bids.formula );
}

CREATE TRIGGER settle AFTER INSERT ON Outcome
{
  IF clicked = 1 AND price > 0 THEN
    SET spent = spent + price;
    SET valueGained = valueGained + clickValue;
    SET amtSpent = amtSpent + price;
    UPDATE Keywords SET roi = valueGained / spent;
  ENDIF;
}
";

fn main() {
    let mut market = Marketplace::builder()
        .slots(2)
        .seed(2008)
        .default_click_probs(vec![0.35, 0.20])
        .build()
        .expect("valid configuration");

    let programmed = market.register_advertiser("ProgrammedCo");
    let rival_a = market.register_advertiser("StaticShoes");
    let rival_b = market.register_advertiser("BudgetBoots");

    // The SQL campaign: click value 20¢, starting bid 3¢, initial ROI 1.5,
    // target spend rate 2¢ per auction.
    let sql_campaign = market
        .add_campaign(
            programmed,
            0,
            CampaignSpec::sql_program(
                PROGRAM,
                TABLES,
                &Params::new()
                    .bind("value", 20)
                    .bind("bid", 3)
                    .bind("roi", 1.5)
                    .bind("rate", 2.0),
            )
            .expect("well-formed bidding program"),
        )
        .expect("campaign accepted");

    // Two classical per-click rivals.
    market
        .add_campaign(rival_a, 0, CampaignSpec::per_click(Money::from_cents(6)))
        .expect("campaign accepted");
    market
        .add_campaign(rival_b, 0, CampaignSpec::per_click(Money::from_cents(4)))
        .expect("campaign accepted");

    println!("serving 12 'shoes' queries against a SQL-programmed bidder…\n");
    for _ in 0..12 {
        let response = market.serve(QueryRequest::new(0)).expect("known keyword");
        let program_row = response
            .placements
            .iter()
            .find(|p| p.campaign == sql_campaign);
        let placed = match program_row {
            Some(p) => format!(
                "slot {} (clicked: {}, charged {})",
                p.slot.position(),
                p.clicked,
                p.charge
            ),
            None => "not placed".to_string(),
        };
        println!(
            "auction {:>2}: expected revenue {:>6.2}¢ | ProgrammedCo {placed}",
            response.time, response.expected_revenue
        );
    }
    println!("\nThe program raised or lowered its bid each round inside SQL —");
    println!("underspending pushes it up toward maxbid, clicks feed the ROI row.");
}
