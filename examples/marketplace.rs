//! Marketplace quickstart: run a sponsored-search *service*, not a
//! hand-assembled auction.
//!
//! Three advertisers register with the marketplace, open campaigns on two
//! keywords ("shoes" and "running"), and the market serves a query stream
//! while bids change incrementally between auctions — the facade-level view
//! of the paper's system (campaign registration, typed query serving,
//! logical bid updates). For the raw single-auction engine underneath, see
//! `examples/quickstart.rs`.
//!
//! ```text
//! cargo run --example marketplace
//! ```

use sponsored_search::bidlang::{BidsTable, Formula, Money};
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::WdMethod;
use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};

fn main() {
    let keywords = ["shoes", "running"];
    let mut market = Marketplace::builder()
        .slots(2)
        .keywords(keywords.len())
        .method(WdMethod::Reduced)
        .pricing(PricingScheme::Gsp)
        .seed(2008)
        .default_click_probs(vec![0.30, 0.18])
        .build()
        .expect("valid configuration");

    // Register advertisers once; campaigns hang off the handles.
    let click_shop = market.register_advertiser("ClickShop");
    let conversion_co = market.register_advertiser("ConversionCo");
    let brand_house = market.register_advertiser("BrandHouse");

    // ClickShop: classical per-click campaigns on both keywords. These
    // support the whole incremental update API.
    let shoes_campaign = market
        .add_campaign(
            click_shop,
            0,
            CampaignSpec::per_click(Money::from_cents(12)).click_value(Money::from_cents(30)),
        )
        .expect("campaign accepted");
    market
        .add_campaign(click_shop, 1, CampaignSpec::per_click(Money::from_cents(8)))
        .expect("campaign accepted");

    // ConversionCo: a multi-feature table — 5¢ per click plus 40¢ per
    // purchase — with its own click/purchase models.
    market
        .add_campaign(
            conversion_co,
            0,
            CampaignSpec::table(BidsTable::new(vec![
                (Formula::click(), Money::from_cents(5)),
                (Formula::purchase(), Money::from_cents(40)),
            ]))
            .click_probs(vec![0.22, 0.12])
            .purchase_probs(vec![(0.5, 0.0), (0.5, 0.0)]),
        )
        .expect("campaign accepted");

    // BrandHouse: pays for prominent placement whether or not anyone
    // clicks (the paper's Figure 3 shape), on the "shoes" keyword only.
    let brand_campaign = market
        .add_campaign(
            brand_house,
            0,
            CampaignSpec::table(BidsTable::figure3()).click_probs(vec![0.25, 0.15]),
        )
        .expect("campaign accepted");

    println!("serving 6 queries with GSP pricing…\n");
    for (round, &keyword) in [0usize, 0, 1, 0, 1, 0].iter().enumerate() {
        // Incremental updates between auctions: after two rounds ClickShop
        // lowers its bid and BrandHouse pauses its campaign — O(log n) on
        // the keyword's logical bid index, no engine rebuild.
        if round == 2 {
            market
                .update_bid(shoes_campaign, Money::from_cents(6))
                .expect("per-click campaign");
            market
                .pause_campaign(brand_campaign)
                .expect("known campaign");
            println!("-- ClickShop drops to 6¢, BrandHouse pauses --\n");
        }
        let response = market
            .serve(QueryRequest::new(keyword))
            .expect("known keyword");
        println!(
            "auction {} on {:?}: expected revenue {:.2}¢",
            response.time, keywords[keyword], response.expected_revenue
        );
        for p in &response.placements {
            println!(
                "  slot {} -> {:<12} clicked: {:<5} purchased: {:<5} charged: {}",
                p.slot.position(),
                market.advertiser_name(p.advertiser).expect("registered"),
                p.clicked,
                p.purchased,
                p.charge
            );
        }
        println!("  realised revenue: {}\n", response.realized_revenue);
    }

    // The logical bid index answers serving-side questions directly.
    let top = market.top_bids(0, 3).expect("known keyword");
    println!("top per-click bids on {:?} now:", keywords[0]);
    for (campaign, bid) in top {
        let owner = market.campaign_advertiser(campaign).expect("registered");
        println!(
            "  {:<12} {}",
            market.advertiser_name(owner).expect("registered"),
            bid
        );
    }
}
