//! Quickstart for the low-level engine: run one multi-feature sponsored
//! search auction end to end with a hand-assembled [`AuctionEngine`].
//!
//! **Start with `examples/marketplace.rs` instead** if you want the service
//! surface — registered advertisers, campaigns, incremental bid updates,
//! and typed query serving. This example is the documented escape hatch
//! underneath it: you own the bidder vector, the probability models, and
//! the RNG yourself.
//!
//! Three advertisers with different goals compete for two slots:
//! a retailer bidding per click, a conversion-focused store bidding on
//! purchases, and a brand bidding on prominent placement (the paper's
//! Figure 3 shape).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sponsored_search::bidlang::{BidsTable, Formula, Money, SlotId};
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::prob::{ClickModel, PurchaseModel};
use sponsored_search::core::{AuctionEngine, EngineConfig, TableBidder, WdMethod};

fn main() {
    let names = ["ClickShop", "ConversionCo", "BrandHouse"];

    // ClickShop: classical single-feature bid — 12¢ per click.
    let click_shop = TableBidder::per_click(Money::from_cents(12));

    // ConversionCo: 5¢ per click plus 40¢ per purchase.
    let conversion_co = TableBidder::new(BidsTable::new(vec![
        (Formula::click(), Money::from_cents(5)),
        (Formula::purchase(), Money::from_cents(40)),
    ]));

    // BrandHouse: the Figure 3 bid — 2¢ for appearing in slot 1 or 2, paid
    // whether or not anyone clicks, plus 6¢ per click.
    let brand_house = TableBidder::new(BidsTable::new(vec![
        (
            Formula::any_slot([SlotId::new(1), SlotId::new(2)]),
            Money::from_cents(2),
        ),
        (Formula::click(), Money::from_cents(6)),
    ]));

    // Click probabilities per advertiser and slot (slot 1 is better), and
    // purchase probabilities conditional on a click.
    let clicks = ClickModel::from_rows(&[vec![0.30, 0.18], vec![0.22, 0.12], vec![0.25, 0.15]]);
    let purchases = PurchaseModel::from_fn(3, 2, |adv, _| {
        // ConversionCo's landing page converts well.
        if adv == 1 {
            (0.5, 0.0)
        } else {
            (0.1, 0.0)
        }
    });

    let mut engine = AuctionEngine::new(
        vec![click_shop, conversion_co, brand_house],
        clicks,
        purchases,
        1,
        EngineConfig {
            method: WdMethod::Reduced,
            pricing: PricingScheme::Gsp,
            ..EngineConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(2008);
    println!("running 5 auctions with GSP pricing…\n");
    for auction in 1..=5 {
        let report = engine.run_auction(0, &mut rng);
        println!(
            "auction {auction}: expected revenue {:.2}¢",
            report.expected_revenue
        );
        for (j, adv) in report.assignment.slot_to_adv.iter().enumerate() {
            match adv {
                Some(a) => println!(
                    "  slot {} -> {:<12} clicked: {:<5} purchased: {}",
                    j + 1,
                    names[*a],
                    report.clicked[j],
                    report.purchased[j]
                ),
                None => println!("  slot {} -> (empty)", j + 1),
            }
        }
        for (adv, price) in &report.charges {
            println!("  charged {:<12} {}", names[*adv], price);
        }
        println!("  realised revenue: {}\n", report.realized_revenue);
    }
}
