//! The Section I motivation: bids that current single-feature auctions
//! cannot express.
//!
//! * "TopOrNothing" wants the topmost slot or no slot at all (market-leader
//!   perception);
//! * "EdgeLover" wants the top or bottom of the list, never the middle
//!   (brand awareness);
//! * two classical per-click bidders fill out the field.
//!
//! The example shows winner determination honouring these constraints —
//! including leaving an advertiser *out* when its "or nothing" clause makes
//! that more valuable — and contrasts against what a separability-based
//! sort would have done.
//!
//! ```text
//! cargo run --example brand_awareness
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sponsored_search::bidlang::{BidsTable, Formula, Money, SlotId};
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::prob::{ClickModel, PurchaseModel};
use sponsored_search::core::{AuctionEngine, EngineConfig, TableBidder, WdMethod};

fn main() {
    let k = 4u16;
    let names = ["TopOrNothing", "EdgeLover", "Clicker-A", "Clicker-B"];

    // TopOrNothing: 30¢ if in slot 1 **or not shown at all** — showing it
    // mid-page destroys the exclusive image it pays for.
    let top_or_nothing = TableBidder::new(BidsTable::new(vec![(
        Formula::slot(SlotId::new(1)) | Formula::no_slot(k),
        Money::from_cents(30),
    )]));

    // EdgeLover: 9¢ per click, plus 8¢ if displayed at the top or bottom
    // edge of the list.
    let edge_lover = TableBidder::new(BidsTable::new(vec![
        (Formula::click(), Money::from_cents(9)),
        (
            Formula::slot(SlotId::new(1)) | Formula::slot(SlotId::new(4)),
            Money::from_cents(8),
        ),
    ]));

    let clicker_a = TableBidder::per_click(Money::from_cents(25));
    let clicker_b = TableBidder::per_click(Money::from_cents(18));

    let clicks = ClickModel::from_fn(4, k as usize, |i, j| {
        [0.5, 0.45, 0.4, 0.35][i] * [1.0, 0.7, 0.5, 0.4][j]
    });
    let purchases = PurchaseModel::never(4, k as usize);

    let mut engine = AuctionEngine::new(
        vec![top_or_nothing, edge_lover, clicker_a, clicker_b],
        clicks,
        purchases,
        1,
        EngineConfig {
            method: WdMethod::Hungarian,
            pricing: PricingScheme::PayYourBid,
            ..EngineConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(31);
    let report = engine.run_auction(0, &mut rng);

    println!("expressive winner determination (k = {k}):\n");
    for (j, adv) in report.assignment.slot_to_adv.iter().enumerate() {
        match adv {
            Some(a) => println!("  slot {} -> {}", j + 1, names[*a]),
            None => println!("  slot {} -> (left empty)", j + 1),
        }
    }
    let placed: Vec<bool> = {
        let mut p = vec![false; 4];
        for a in report.assignment.slot_to_adv.iter().flatten() {
            p[*a] = true;
        }
        p
    };
    for (i, name) in names.iter().enumerate() {
        if !placed[i] {
            println!("  not shown -> {name}");
        }
    }
    println!("\nexpected revenue: {:.1}¢", report.expected_revenue);
    println!(
        "note: TopOrNothing is monetised either way — its 'or nothing' bid \
         pays {} when it is withheld from the page.",
        Money::from_cents(30)
    );
    println!(
        "\nA separability-based sort (Section III-C) cannot express this: it \
         would rank advertisers by per-click value and could strand \
         TopOrNothing in a middle slot, worth 0 to it."
    );
}
