//! Runs the paper's Figure 5 "Equalize ROI" SQL bidding program inside the
//! bundled relational engine, reproducing the Figure 4 → Figure 6
//! walkthrough and then letting the program adapt over a few auctions.
//!
//! ```text
//! cargo run --example bidding_programs
//! ```

use sponsored_search::minidb::{Database, Value};

const EQUALIZE_ROI: &str = "
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
        AND K.formula = Bids.formula );
}
";

fn print_table(db: &mut Database, title: &str, sql: &str) {
    println!("-- {title}");
    for row in db.query(sql).expect("query") {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:<18}")).collect();
        println!("   {}", cells.join(" "));
    }
    println!();
}

fn main() {
    let mut db = Database::new();
    db.run("CREATE TABLE Query (text TEXT)").unwrap();
    db.run(
        "CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, \
         relevance FLOAT)",
    )
    .unwrap();
    db.run("CREATE TABLE Bids (formula TEXT, value INT)")
        .unwrap();

    // Figure 4.
    db.run(
        "INSERT INTO Keywords VALUES \
           ('boot', 'Click AND Slot1', 5, 2.0, 4, 0.8), \
           ('shoe', 'Click', 6, 1.0, 8, 0.2)",
    )
    .unwrap();
    db.run("INSERT INTO Bids VALUES ('Click AND Slot1', 0), ('Click', 0)")
        .unwrap();

    println!("installing the Figure 5 bidding program…\n{EQUALIZE_ROI}");
    db.run(EQUALIZE_ROI).unwrap();

    print_table(
        &mut db,
        "Keywords (Figure 4)",
        "SELECT text, formula, maxbid, roi, bid, relevance FROM Keywords",
    );

    // Balanced spending → the trigger only refreshes the Bids table.
    db.set_var("amtSpent", Value::Int(10));
    db.set_var("time", Value::Int(10));
    db.set_var("targetSpendRate", Value::Int(1));
    db.run("INSERT INTO Query VALUES ('red boots')").unwrap();
    print_table(
        &mut db,
        "Bids after a balanced auction (Figure 6)",
        "SELECT formula, value FROM Bids",
    );

    // Underspending for several auctions: the max-ROI keyword climbs to its
    // cap.
    db.set_var("amtSpent", Value::Int(0));
    db.set_var("targetSpendRate", Value::Int(3));
    for t in 11..=14 {
        db.set_var("time", Value::Int(t));
        db.run("INSERT INTO Query VALUES ('boots')").unwrap();
    }
    print_table(
        &mut db,
        "Keywords after 4 underspending auctions (bid capped at maxbid)",
        "SELECT text, bid, maxbid FROM Keywords",
    );

    // Overspending: the min-ROI keyword is wound down.
    db.set_var("amtSpent", Value::Int(500));
    for t in 15..=18 {
        db.set_var("time", Value::Int(t));
        db.run("INSERT INTO Query VALUES ('running shoes')")
            .unwrap();
        // The shoe keyword is the only relevant one in these queries.
        db.run("UPDATE Keywords SET relevance = 0.0 WHERE text = 'boot'")
            .unwrap();
        db.run("UPDATE Keywords SET relevance = 1.0 WHERE text = 'shoe'")
            .unwrap();
    }
    db.run("INSERT INTO Query VALUES ('shoes again')").unwrap();
    print_table(
        &mut db,
        "Keywords after overspending auctions on 'shoe'",
        "SELECT text, bid FROM Keywords",
    );
}
