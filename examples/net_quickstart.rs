//! Network serving quickstart: the TCP sibling of
//! `examples/sharded_marketplace.rs`.
//!
//! An `ssa_net::Server` is booted in-process on an ephemeral port, then a
//! `Client` drives the whole marketplace lifecycle over the framed wire
//! protocol: configure the market, register advertisers and campaigns,
//! serve single auctions and a batched stream, mutate bids mid-stream,
//! inspect the bid book and server counters — and finally the same run is
//! replayed on an in-process `ShardedMarketplace` to demonstrate the
//! serving contract: the wire changes the transport, never the auctions.
//!
//! ```text
//! cargo run --example net_quickstart
//! ```

use sponsored_search::bidlang::Money;
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::sharded::ShardedMarketplace;
use sponsored_search::core::WdMethod;
use sponsored_search::marketplace::{CampaignSpec, Marketplace, MarketplaceBuilder};
use sponsored_search::net::{Client, MarketConfig, Server, ServerConfig};

const KEYWORDS: usize = 4;
const SHARDS: usize = 2;
const SEED: u64 = 2008;

fn builder() -> MarketplaceBuilder {
    Marketplace::builder()
        .slots(2)
        .keywords(KEYWORDS)
        .method(WdMethod::Reduced)
        .seed(SEED)
        .default_click_probs(vec![0.4, 0.25])
}

fn main() {
    // A server needs *a* marketplace to start; clients usually reshape it
    // over the wire with `configure`, exactly as we do below.
    let bootstrap: ShardedMarketplace = builder().build_sharded(SHARDS).expect("valid config");
    let server = Server::bind("127.0.0.1:0", bootstrap, ServerConfig::default())
        .expect("bind ephemeral port")
        .spawn();
    println!("ssa-server listening on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("server is alive");

    // Control plane: rebuild the market to a known shape, then populate
    // it — every call is a framed request with a typed response.
    client
        .configure(&MarketConfig {
            slots: 2,
            keywords: KEYWORDS as u64,
            seed: SEED,
            method: WdMethod::Reduced,
            pricing: PricingScheme::Gsp,
            shards: SHARDS as u64,
            pruned: false,
            warm_start: true,
        })
        .expect("reconfigure");
    let athletics = client
        .register_advertiser("Athletics Inc")
        .expect("register");
    let runners = client
        .register_advertiser("Runner's Hub")
        .expect("register");
    let brand = client.register_advertiser("BrandHouse").expect("register");
    let mut campaigns = Vec::new();
    for keyword in 0..KEYWORDS {
        // Three bidders on two slots keeps GSP's runner-up price live, so
        // realized revenue is non-trivial.
        for (advertiser, cents) in [
            (athletics, 10 + keyword as i64),
            (runners, 14 - keyword as i64),
            (brand, 7),
        ] {
            campaigns.push(
                client
                    .add_campaign(
                        advertiser,
                        keyword,
                        Money::from_cents(cents),
                        Money::from_cents(3 * cents),
                        None,
                        // The wire-configured market has no default click
                        // model; campaigns carry their own curves.
                        Some(vec![0.4, 0.25]),
                    )
                    .expect("campaign accepted"),
            );
        }
    }

    // Data plane: single auctions...
    let response = client.serve(0).expect("keyword 0 exists");
    println!(
        "\nfirst wire auction: keyword {} · time {} · {} placements · realized {}",
        response.keyword,
        response.time,
        response.placements.len(),
        response.realized_revenue,
    );

    // ...and batched streams, answered with an aggregate summary.
    let stream: Vec<usize> = (1..200).map(|i| i % KEYWORDS).collect();
    let batch = client.serve_batch(&stream).expect("keywords in range");
    println!(
        "wire batch: {} auctions · {} clicks · realized {}¢",
        batch.auctions, batch.clicks, batch.realized_cents,
    );

    // Incremental updates land between auctions, same as in process.
    client
        .update_bid(campaigns[0], Money::from_cents(1))
        .expect("per-click campaign");
    client.pause_campaign(campaigns[3]).expect("known campaign");
    let batch2 = client.serve_batch(&stream).expect("keywords in range");

    println!("\ntop of the keyword-0 bid book after the update:");
    for (id, bid) in client.top_bids(0, 3).expect("known keyword") {
        println!("  {id:?} bids {bid}");
    }
    let stats = client.stats().expect("stats");
    println!(
        "server counters: {} auctions · {} requests · {} sessions · {} overloaded",
        stats.auctions, stats.requests, stats.sessions, stats.overloaded,
    );

    // The serving contract: replay the identical run in process — same
    // config, same population, same stream — and compare outcomes.
    let mut local = builder().build_sharded(SHARDS).expect("valid config");
    let a = local.register_advertiser("Athletics Inc");
    let r = local.register_advertiser("Runner's Hub");
    let b = local.register_advertiser("BrandHouse");
    let mut local_campaigns = Vec::new();
    for keyword in 0..KEYWORDS {
        for (advertiser, cents) in [(a, 10 + keyword as i64), (r, 14 - keyword as i64), (b, 7)] {
            local_campaigns.push(
                local
                    .add_campaign(
                        advertiser,
                        keyword,
                        CampaignSpec::per_click(Money::from_cents(cents))
                            .click_value(Money::from_cents(3 * cents)),
                    )
                    .expect("campaign accepted"),
            );
        }
    }
    let local_first = local
        .serve(sponsored_search::marketplace::QueryRequest::new(0))
        .expect("keyword 0 exists");
    assert_eq!(response, local_first, "single auctions must agree");
    let queries: Vec<_> = stream
        .iter()
        .map(|&k| sponsored_search::marketplace::QueryRequest::new(k))
        .collect();
    let local_batch = local.serve_batch(&queries).expect("keywords in range");
    assert_eq!(
        batch.expected_revenue.to_bits(),
        local_batch.total.expected_revenue.to_bits()
    );
    assert_eq!(batch.clicks, local_batch.total.clicks);
    local
        .update_bid(local_campaigns[0], Money::from_cents(1))
        .expect("per-click campaign");
    local
        .pause_campaign(local_campaigns[3])
        .expect("known campaign");
    let local_batch2 = local.serve_batch(&queries).expect("keywords in range");
    assert_eq!(
        batch2.expected_revenue.to_bits(),
        local_batch2.total.expected_revenue.to_bits()
    );
    assert_eq!(
        batch2.realized_cents,
        local_batch2.total.realized_revenue.cents()
    );
    println!("\nin-process replay matched the wire run bit-for-bit");

    // Graceful shutdown drains in-flight work, then the listener closes.
    client.shutdown_server().expect("graceful shutdown");
    server.join();
    println!("server drained and stopped");
}
