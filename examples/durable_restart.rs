//! Durability end to end: journal a marketplace's life to a write-ahead
//! log, "crash", recover from disk, and keep serving — bit-identically.
//!
//! ```text
//! cargo run --example durable_restart
//! ```

use sponsored_search::bidlang::Money;
use sponsored_search::durable::{recover, Durability, FsyncPolicy};
use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};

fn main() {
    let dir = std::env::temp_dir().join(format!("ssa-durable-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // ── Life before the crash ──────────────────────────────────────────
    // Open a durability store, journal the configuration, and attach the
    // journal: from here on every mutation and serve is logged.
    let (recovered, durability) =
        Durability::open(&dir, FsyncPolicy::Off, 0).expect("open data dir");
    assert!(recovered.is_none(), "fresh directory");
    let mut market = Marketplace::builder()
        .slots(2)
        .keywords(4)
        .seed(7)
        .default_click_probs(vec![0.7, 0.35])
        .build_sharded(2)
        .expect("valid configuration");
    durability
        .log_configure(&market.capture_state().expect("journalable").config)
        .expect("configure logged");
    market.set_journal(durability.journal());

    let shoes = market.register_advertiser("shoes.example");
    let books = market.register_advertiser("books.example");
    for kw in 0..4 {
        market
            .add_campaign(
                shoes,
                kw,
                CampaignSpec::per_click(Money::from_cents(20 + kw as i64))
                    .click_value(Money::from_cents(70)),
            )
            .expect("campaign");
        market
            .add_campaign(
                books,
                kw,
                CampaignSpec::per_click(Money::from_cents(35))
                    .click_value(Money::from_cents(100))
                    .roi_target(1.4),
            )
            .expect("campaign");
    }
    for t in 0..50 {
        market.serve(QueryRequest::new(t % 4)).expect("serve");
    }
    println!(
        "served 50 auctions, journalled {} records to {}",
        durability.wal_records(),
        dir.display()
    );

    // ── The crash ──────────────────────────────────────────────────────
    // Drop everything without ceremony; only the bytes on disk survive.
    drop(durability);
    let survivor_state = market.capture_state().expect("journalable");
    drop(market);

    // ── Recovery ───────────────────────────────────────────────────────
    let (mut recovered, report) = recover(&dir)
        .expect("recovery succeeds")
        .expect("state persisted");
    println!(
        "recovered {} wal records ({} snapshot bytes) in {:.3} ms",
        report.wal_records, report.snapshot_bytes, report.replay_ms
    );
    assert_eq!(
        recovered.capture_state().expect("journalable"),
        survivor_state,
        "recovered marketplace is bit-identical to the pre-crash one"
    );

    // The recovered instance continues exactly where the old one would
    // have: same winners, same clicks, same charges — the RNG streams
    // replayed to the same positions.
    let next = recovered.serve(QueryRequest::new(0)).expect("serve");
    println!(
        "first post-recovery auction: {} placements, expected revenue {:.4}",
        next.placements.len(),
        next.expected_revenue
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("ok");
}
