//! The Section II-C scenario: a boot retailer running the Equalize-ROI
//! strategy against a field of competitors, watching its spending rate
//! converge towards the target.
//!
//! ```text
//! cargo run --example roi_campaign
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sponsored_search::bidlang::Money;
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::prob::{ClickModel, PurchaseModel};
use sponsored_search::core::{AuctionEngine, EngineConfig, WdMethod};
use sponsored_search::strategy::{KeywordEntry, RoiBidder};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 30;
    let keywords = 2; // "boot" and "shoe"
    let k = 4;

    // Our focal advertiser: values boots highly, shoes less; target spend
    // rate of 3¢ per auction.
    let focal = RoiBidder::new(
        vec![
            KeywordEntry::new(40, 10, 2.0),
            KeywordEntry::new(25, 10, 1.0),
        ],
        3.0,
    );

    // A crowd of competitors with random parameters, all using the same
    // heuristic (the Section V population in miniature).
    let mut bidders = vec![focal];
    for _ in 1..n {
        let entries = (0..keywords)
            .map(|_| {
                let value = rng.gen_range(5..=50);
                KeywordEntry::new(value, rng.gen_range(1..=value), rng.gen_range(0.5..2.5))
            })
            .collect();
        bidders.push(RoiBidder::new(entries, rng.gen_range(1.0..6.0)));
    }

    let clicks = ClickModel::from_fn(n, k, |_, j| {
        let hi = 0.9 - j as f64 * 0.2;
        rng.gen_range((hi - 0.2)..hi)
    });
    let purchases = PurchaseModel::never(n, k);

    let mut engine = AuctionEngine::new(
        bidders,
        clicks,
        purchases,
        keywords,
        EngineConfig {
            method: WdMethod::Reduced,
            pricing: PricingScheme::Gsp,
            ..EngineConfig::default()
        },
    );

    println!("target spend rate: 3.00 ¢/auction\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "auction", "spent(¢)", "rate(¢/a)", "bid[boot]", "bid[shoe]"
    );
    let mut sample_rng = StdRng::seed_from_u64(1234);
    for t in 1..=400u64 {
        let keyword = sample_rng.gen_range(0..keywords);
        engine.run_auction(keyword, &mut sample_rng);
        if t % 50 == 0 {
            let focal = &engine.bidders[0];
            println!(
                "{:>8} {:>12.0} {:>12.3} {:>10} {:>10}",
                t,
                focal.amt_spent,
                focal.amt_spent / t as f64,
                Money::from_cents(focal.keywords[0].bid),
                Money::from_cents(focal.keywords[1].bid),
            );
        }
    }
    let focal = &engine.bidders[0];
    let final_rate = focal.amt_spent / 400.0;
    println!(
        "\nfinal spending rate {:.3} ¢/auction (target 3.0); ROI boot {:.2}, shoe {:.2}",
        final_rate, focal.keywords[0].roi, focal.keywords[1].roi
    );
}
